#include <gtest/gtest.h>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/calibration.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/core/engine.h"

#include "session_helpers.h"

namespace holoclean {
namespace {

// ---------- Evaluation ----------

struct EvalFixture {
  EvalFixture() : dataset([] {
    Table dirty(Schema({"A"}), std::make_shared<Dictionary>());
    dirty.AppendRow({"x"});
    dirty.AppendRow({"wrong"});
    dirty.AppendRow({"also_wrong"});
    return Dataset(std::move(dirty));
  }()) {
    Table clean = dataset.dirty().Clone();
    clean.SetString(1, 0, "y");
    clean.SetString(2, 0, "z");
    dataset.set_clean(std::move(clean));
  }
  Dataset dataset;
  ValueId Id(const std::string& s) {
    return dataset.dirty().dict().Intern(s);
  }
};

TEST(Evaluation, PerfectRepairs) {
  EvalFixture f;
  std::vector<Repair> repairs = {
      {{1, 0}, f.Id("wrong"), f.Id("y"), 0.9},
      {{2, 0}, f.Id("also_wrong"), f.Id("z"), 0.9},
  };
  EvalResult e = EvaluateRepairs(f.dataset, repairs);
  EXPECT_EQ(e.total_errors, 2u);
  EXPECT_EQ(e.correct_repairs, 2u);
  EXPECT_DOUBLE_EQ(e.precision, 1.0);
  EXPECT_DOUBLE_EQ(e.recall, 1.0);
  EXPECT_DOUBLE_EQ(e.f1, 1.0);
}

TEST(Evaluation, PartialAndWrongRepairs) {
  EvalFixture f;
  std::vector<Repair> repairs = {
      {{1, 0}, f.Id("wrong"), f.Id("y"), 0.9},     // Correct.
      {{0, 0}, f.Id("x"), f.Id("bogus"), 0.6},     // Breaks a clean cell.
  };
  EvalResult e = EvaluateRepairs(f.dataset, repairs);
  EXPECT_EQ(e.correct_repairs, 1u);
  EXPECT_DOUBLE_EQ(e.precision, 0.5);
  EXPECT_DOUBLE_EQ(e.recall, 0.5);
  EXPECT_NEAR(e.f1, 0.5, 1e-12);
}

TEST(Evaluation, NoopRepairsIgnored) {
  EvalFixture f;
  std::vector<Repair> repairs = {{{1, 0}, f.Id("wrong"), f.Id("wrong"), 1.0}};
  EvalResult e = EvaluateRepairs(f.dataset, repairs);
  EXPECT_EQ(e.total_repairs, 0u);
  EXPECT_DOUBLE_EQ(e.precision, 0.0);
}

// ---------- Calibration ----------

TEST(Calibration, BucketsRepairsByProbability) {
  EvalFixture f;
  std::vector<Repair> repairs = {
      {{1, 0}, f.Id("wrong"), f.Id("y"), 0.55},       // Correct, [.5,.6).
      {{2, 0}, f.Id("also_wrong"), f.Id("q"), 0.58},  // Wrong, [.5,.6).
      {{0, 0}, f.Id("x"), f.Id("bogus"), 0.95},       // Wrong, [.9,1].
  };
  auto buckets = ComputeCalibration(f.dataset, repairs);
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0].total, 2u);
  EXPECT_EQ(buckets[0].wrong, 1u);
  EXPECT_DOUBLE_EQ(buckets[0].ErrorRate(), 0.5);
  EXPECT_EQ(buckets[4].total, 1u);
  EXPECT_DOUBLE_EQ(buckets[4].ErrorRate(), 1.0);
  EXPECT_EQ(buckets[2].total, 0u);
  EXPECT_DOUBLE_EQ(buckets[2].ErrorRate(), 0.0);
}

TEST(Calibration, TopBucketIncludesProbabilityOne) {
  EvalFixture f;
  std::vector<Repair> repairs = {{{1, 0}, f.Id("wrong"), f.Id("y"), 1.0}};
  auto buckets = ComputeCalibration(f.dataset, repairs);
  EXPECT_EQ(buckets[4].total, 1u);
}

// ---------- Config ----------

TEST(Config, DcModeNames) {
  EXPECT_EQ(DcModeName(DcMode::kFactors), "DC Factors");
  EXPECT_EQ(DcModeName(DcMode::kFeatures), "DC Feats");
  EXPECT_EQ(DcModeName(DcMode::kBoth), "DC Feats + DC Factors");
}

TEST(Config, GroundingOptionsMirrorConfig) {
  HoloCleanConfig config;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.dc_factor_weight = 7.0;
  config.minimality_weight = 0.25;
  GroundingOptions g = config.ToGroundingOptions();
  EXPECT_EQ(g.dc_mode, DcMode::kBoth);
  EXPECT_TRUE(g.use_partitioning);
  EXPECT_DOUBLE_EQ(g.dc_factor_weight, 7.0);
  EXPECT_DOUBLE_EQ(g.minimality_weight, 0.25);
}

// ---------- Pipeline on a small controlled instance ----------

struct PipelineFixture {
  PipelineFixture() : dataset([] {
    Table dirty(Schema({"Name", "Zip", "City"}),
                std::make_shared<Dictionary>());
    // 10 clean duplicated rows + 2 corrupted ones.
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"a", "60608", "Chicago"});
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"b", "60201", "Evanston"});
    dirty.AppendRow({"a", "60609", "Chicago"});   // t10: wrong zip.
    dirty.AppendRow({"b", "60201", "Evnaston"});  // t11: typo city.
    return Dataset(std::move(dirty));
  }()) {
    Table clean = dataset.dirty().Clone();
    clean.SetString(10, 1, "60608");
    clean.SetString(11, 2, "Evanston");
    dataset.set_clean(std::move(clean));
    auto parsed = ParseDenialConstraints(
        "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Zip,t2.Zip)\n"
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n",
        dataset.dirty().schema());
    EXPECT_TRUE(parsed.ok());
    dcs = parsed.value();
  }
  Dataset dataset;
  std::vector<DenialConstraint> dcs;
};

TEST(Pipeline, RepairsInjectedErrors) {
  PipelineFixture f;
  HoloCleanConfig config;
  config.tau = 0.3;
  auto report = test_helpers::RunOnce(config, &f.dataset, f.dcs);
  ASSERT_TRUE(report.ok());
  EvalResult e = EvaluateRepairs(f.dataset, report.value().repairs);
  EXPECT_EQ(e.total_errors, 2u);
  EXPECT_EQ(e.correct_repairs, 2u);
  EXPECT_DOUBLE_EQ(e.precision, 1.0);
  EXPECT_DOUBLE_EQ(e.recall, 1.0);
}

TEST(Pipeline, CleanDataYieldsNoRepairs) {
  PipelineFixture f;
  Dataset clean_ds(f.dataset.clean().Clone());
  clean_ds.set_clean(f.dataset.clean().Clone());
  auto report = test_helpers::RunOnce(HoloCleanConfig{}, &clean_ds, f.dcs);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().repairs.empty());
  EXPECT_EQ(report.value().stats.num_violations, 0u);
}

TEST(Pipeline, ReportStatsPopulated) {
  PipelineFixture f;
  auto report = test_helpers::RunOnce(HoloCleanConfig{}, &f.dataset, f.dcs);
  ASSERT_TRUE(report.ok());
  const RunStats& s = report.value().stats;
  EXPECT_GT(s.num_violations, 0u);
  EXPECT_GT(s.num_noisy_cells, 0u);
  EXPECT_EQ(s.num_query_vars, s.num_noisy_cells);
  EXPECT_GT(s.num_candidates, 0u);
  EXPECT_GT(s.num_grounded_factors, 0u);
  EXPECT_GE(s.TotalSeconds(), 0.0);
  EXPECT_FALSE(report.value().ddlog.empty());
  EXPECT_FALSE(report.value().posteriors.empty());
}

TEST(Pipeline, DeterministicForSeed) {
  PipelineFixture f1;
  PipelineFixture f2;
  HoloCleanConfig config;
  config.seed = 7;
  auto r1 = CleanOnce(CleaningInputs::Borrowed(&f1.dataset, &f1.dcs), {config});
  auto r2 = CleanOnce(CleaningInputs::Borrowed(&f2.dataset, &f2.dcs), {config});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1.value().repairs.size(), r2.value().repairs.size());
  for (size_t i = 0; i < r1.value().repairs.size(); ++i) {
    EXPECT_EQ(r1.value().repairs[i].cell, r2.value().repairs[i].cell);
    EXPECT_EQ(r1.value().repairs[i].new_value,
              r2.value().repairs[i].new_value);
    EXPECT_DOUBLE_EQ(r1.value().repairs[i].probability,
                     r2.value().repairs[i].probability);
  }
}

TEST(Pipeline, GibbsModeAlsoRepairs) {
  PipelineFixture f;
  HoloCleanConfig config;
  config.tau = 0.3;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 20;
  config.gibbs_samples = 100;
  auto report = test_helpers::RunOnce(config, &f.dataset, f.dcs);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().stats.num_dc_factors, 0u);
  EvalResult e = EvaluateRepairs(f.dataset, report.value().repairs);
  EXPECT_GE(e.recall, 0.5);
}

TEST(Pipeline, RepairProbabilitiesAreValid) {
  PipelineFixture f;
  auto report = test_helpers::RunOnce(HoloCleanConfig{}, &f.dataset, f.dcs);
  ASSERT_TRUE(report.ok());
  for (const Repair& r : report.value().repairs) {
    EXPECT_GT(r.probability, 0.0);
    EXPECT_LE(r.probability, 1.0);
    EXPECT_NE(r.new_value, r.old_value);
  }
}

TEST(Pipeline, ApplyWritesRepairs) {
  PipelineFixture f;
  HoloCleanConfig config;
  config.tau = 0.3;
  auto report = test_helpers::RunOnce(config, &f.dataset, f.dcs);
  ASSERT_TRUE(report.ok());
  Table repaired = f.dataset.dirty().Clone();
  report.value().Apply(&repaired);
  EXPECT_EQ(repaired.GetString(10, 1), "60608");
  EXPECT_EQ(repaired.GetString(11, 2), "Evanston");
}

TEST(Pipeline, NullDatasetRejected) {
  EXPECT_FALSE(test_helpers::RunOnce(HoloCleanConfig{}, nullptr, {}).ok());
  EXPECT_FALSE(test_helpers::OpenSessionOver(HoloCleanConfig{}, nullptr, {}).ok());
}

// ---------- Staged session ----------

TEST(Stage, NamesRoundTrip) {
  for (int i = 0; i < kNumStages; ++i) {
    StageId id = static_cast<StageId>(i);
    auto parsed = ParseStageName(StageName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), id);
  }
  EXPECT_FALSE(ParseStageName("ground").ok());
  EXPECT_FALSE(ParseStageName("").ok());
}

TEST(Session, StagedRunMatchesLegacyRunExactly) {
  PipelineFixture f1;
  PipelineFixture f2;
  HoloCleanConfig config;
  config.tau = 0.3;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 10;
  config.gibbs_samples = 40;

  auto legacy = CleanOnce(CleaningInputs::Borrowed(&f1.dataset, &f1.dcs), {config});
  ASSERT_TRUE(legacy.ok());

  auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&f2.dataset, &f2.dcs), {config});
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto staged = session.Run();
  ASSERT_TRUE(staged.ok());

  const Report& a = legacy.value();
  const Report& b = staged.value();
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].cell, b.repairs[i].cell);
    EXPECT_EQ(a.repairs[i].old_value, b.repairs[i].old_value);
    EXPECT_EQ(a.repairs[i].new_value, b.repairs[i].new_value);
    EXPECT_DOUBLE_EQ(a.repairs[i].probability, b.repairs[i].probability);
  }
  ASSERT_EQ(a.posteriors.size(), b.posteriors.size());
  for (size_t i = 0; i < a.posteriors.size(); ++i) {
    EXPECT_EQ(a.posteriors[i].cell, b.posteriors[i].cell);
    EXPECT_EQ(a.posteriors[i].map_value, b.posteriors[i].map_value);
    EXPECT_DOUBLE_EQ(a.posteriors[i].map_prob, b.posteriors[i].map_prob);
  }
  EXPECT_EQ(a.stats.num_violations, b.stats.num_violations);
  EXPECT_EQ(a.stats.num_noisy_cells, b.stats.num_noisy_cells);
  EXPECT_EQ(a.stats.num_query_vars, b.stats.num_query_vars);
  EXPECT_EQ(a.stats.num_grounded_factors, b.stats.num_grounded_factors);
  EXPECT_EQ(a.ddlog, b.ddlog);
}

TEST(Session, StageTimingsRecordedUniformly) {
  PipelineFixture f;
  auto opened = test_helpers::OpenSessionOver(HoloCleanConfig{}, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  const auto& timings = report.value().stats.stage_timings;
  ASSERT_EQ(timings.size(), static_cast<size_t>(kNumStages));
  const char* expected[] = {"detect", "compile", "learn", "infer", "repair"};
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(timings[static_cast<size_t>(i)].name, expected[i]);
    EXPECT_FALSE(timings[static_cast<size_t>(i)].cached);
    EXPECT_GE(timings[static_cast<size_t>(i)].seconds, 0.0);
  }
}

TEST(Session, PeakRssRecordedPerStage) {
  PipelineFixture f;
  auto opened = test_helpers::OpenSessionOver(HoloCleanConfig{}, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  const auto& timings = report.value().stats.stage_timings;
  ASSERT_EQ(timings.size(), static_cast<size_t>(kNumStages));
  // The per-stage samples are process peak RSS at stage completion:
  // non-zero (on platforms with procfs or getrusage) and monotone
  // non-decreasing in stage order.
  size_t previous = 0;
  for (int i = 0; i < kNumStages; ++i) {
    size_t rss = timings[static_cast<size_t>(i)].peak_rss_bytes;
    EXPECT_GT(rss, 0u) << "stage " << i;
    EXPECT_GE(rss, previous) << "stage " << i;
    previous = rss;
  }
}

TEST(Session, RerunFromInferReusesCachedGraph) {
  PipelineFixture f;
  HoloCleanConfig config;
  config.tau = 0.3;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 10;
  config.gibbs_samples = 40;
  auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&f.dataset, &f.dcs), {config});
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();

  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(session.context().ground_runs, 1u);
  Grounder::Stats stats_before = session.context().grounder_stats;

  session.Invalidate(StageId::kInfer);
  EXPECT_TRUE(session.StageIsValid(StageId::kLearn));
  EXPECT_FALSE(session.StageIsValid(StageId::kInfer));
  auto second = session.Run();
  ASSERT_TRUE(second.ok());

  // No re-grounding happened: the cached FactorGraph was reused.
  EXPECT_EQ(session.context().ground_runs, 1u);
  EXPECT_EQ(session.context().grounder_stats.num_query_vars,
            stats_before.num_query_vars);
  EXPECT_EQ(session.context().grounder_stats.num_dc_factors,
            stats_before.num_dc_factors);
  const auto& timings = second.value().stats.stage_timings;
  EXPECT_TRUE(timings[0].cached);
  EXPECT_TRUE(timings[1].cached);
  EXPECT_TRUE(timings[2].cached);
  EXPECT_FALSE(timings[3].cached);

  // Unchanged weights + same seed: identical repairs, bit for bit.
  const auto& a = first.value().repairs;
  const auto& b = second.value().repairs;
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell, b[i].cell);
    EXPECT_EQ(a[i].new_value, b[i].new_value);
    EXPECT_DOUBLE_EQ(a[i].probability, b[i].probability);
  }
}

TEST(Session, RunThroughCompileGroundsWithoutRepairing) {
  PipelineFixture f;
  auto opened = test_helpers::OpenSessionOver(HoloCleanConfig{}, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto report = session.RunThrough(StageId::kCompile);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().stats.num_query_vars, 0u);
  EXPECT_TRUE(report.value().repairs.empty());
  EXPECT_EQ(session.context().weights.size(), 0u);
  EXPECT_TRUE(session.StageIsValid(StageId::kCompile));
  EXPECT_FALSE(session.StageIsValid(StageId::kLearn));

  // Finishing the run executes only the remaining stages.
  auto full = session.Run();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(session.context().ground_runs, 1u);
  EXPECT_FALSE(full.value().repairs.empty());
}

TEST(Session, UpdateConfigInvalidatesMinimalSuffix) {
  PipelineFixture f;
  HoloCleanConfig config;
  config.tau = 0.3;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&f.dataset, &f.dcs), {config});
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.Run().ok());
  ASSERT_EQ(session.context().ground_runs, 1u);

  // Inference knob: only infer and repair re-execute.
  HoloCleanConfig infer_knob = config;
  infer_knob.gibbs_samples += 10;
  session.UpdateConfig(infer_knob);
  EXPECT_TRUE(session.StageIsValid(StageId::kLearn));
  EXPECT_FALSE(session.StageIsValid(StageId::kInfer));
  ASSERT_TRUE(session.Run().ok());
  EXPECT_EQ(session.context().ground_runs, 1u);

  // Pruning knob: compile re-executes (re-grounding).
  HoloCleanConfig compile_knob = infer_knob;
  compile_knob.tau = 0.5;
  session.UpdateConfig(compile_knob);
  EXPECT_TRUE(session.StageIsValid(StageId::kDetect));
  EXPECT_FALSE(session.StageIsValid(StageId::kCompile));
  ASSERT_TRUE(session.Run().ok());
  EXPECT_EQ(session.context().ground_runs, 2u);

  // Identical config: everything stays valid, Run is a cache hit.
  session.UpdateConfig(compile_knob);
  EXPECT_TRUE(session.StageIsValid(StageId::kRepair));
  ASSERT_TRUE(session.Run().ok());
  EXPECT_EQ(session.context().ground_runs, 2u);
}

TEST(Session, CachedStagesReportZeroLegacySeconds) {
  PipelineFixture f;
  HoloCleanConfig config;
  config.tau = 0.3;
  auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&f.dataset, &f.dcs), {config});
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Run();
  ASSERT_TRUE(first.ok());

  // Incremental re-run from infer: detect/compile/learn are cached and the
  // run spent no time in them, so the legacy phase view must not re-report
  // the prior run's wall times.
  session.Invalidate(StageId::kInfer);
  auto second = session.Run();
  ASSERT_TRUE(second.ok());
  const RunStats& s = second.value().stats;
  EXPECT_DOUBLE_EQ(s.detect_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.compile_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.learn_seconds, 0.0);
  EXPECT_GE(s.infer_seconds, 0.0);
  // The per-stage view keeps the prior wall time for reference, flagged.
  EXPECT_TRUE(s.stage_timings[0].cached);
  EXPECT_DOUBLE_EQ(s.stage_timings[0].seconds,
                   first.value().stats.stage_timings[0].seconds);

  // A prefix re-run reports nothing for the stages it never visited.
  session.Invalidate(StageId::kCompile);
  auto prefix = session.RunThrough(StageId::kCompile);
  ASSERT_TRUE(prefix.ok());
  EXPECT_DOUBLE_EQ(prefix.value().stats.detect_seconds, 0.0);
  EXPECT_GE(prefix.value().stats.compile_seconds, 0.0);
  EXPECT_DOUBLE_EQ(prefix.value().stats.learn_seconds, 0.0);
  EXPECT_DOUBLE_EQ(prefix.value().stats.infer_seconds, 0.0);
}

TEST(Session, PinCellSkipsDetectionAndRemovesQueryVariable) {
  PipelineFixture f;
  HoloCleanConfig config;
  config.tau = 0.3;
  auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&f.dataset, &f.dcs), {config});
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().repairs.empty());

  Repair verified = first.value().repairs.front();
  session.PinCell(verified.cell, verified.new_value);
  EXPECT_TRUE(session.StageIsValid(StageId::kDetect));
  EXPECT_FALSE(session.StageIsValid(StageId::kCompile));

  auto second = session.Run();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session.context().ground_runs, 2u);
  EXPECT_EQ(f.dataset.dirty().Get(verified.cell), verified.new_value);
  for (const Repair& r : second.value().repairs) {
    EXPECT_FALSE(r.cell == verified.cell);
  }
  for (const CellPosterior& p : second.value().posteriors) {
    EXPECT_FALSE(p.cell == verified.cell);
  }
  const auto& timings = second.value().stats.stage_timings;
  EXPECT_TRUE(timings[0].cached);
  EXPECT_FALSE(timings[1].cached);
}

}  // namespace
}  // namespace holoclean
