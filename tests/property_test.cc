// Property-style tests (parameterized sweeps) over the system's invariants:
// the τ tradeoff of Algorithm 2, grounding monotonicity, marginal validity,
// determinism, and robustness to error rates.

#include <gtest/gtest.h>

#include "holoclean/core/evaluation.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/model/domain_pruning.h"

namespace holoclean {
namespace {

// ---------- τ sweep: Algorithm 2's scalability/quality dial ----------

class TauSweep : public ::testing::TestWithParam<double> {};

TEST_P(TauSweep, CandidateCountShrinksWithTau) {
  GeneratedData data = MakeHospital({400, 0.05, 61});
  std::vector<AttrId> attrs = data.dataset.RepairableAttrs();
  CooccurrenceStats cooc =
      CooccurrenceStats::Build(data.dataset.dirty(), attrs);
  ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
  NoisyCells noisy =
      ViolationDetector::NoisyFromViolations(detector.Detect());

  DomainPruningOptions low;
  low.tau = 0.1;
  DomainPruningOptions here;
  here.tau = GetParam();
  size_t low_count =
      PruneDomains(data.dataset.dirty(), noisy.cells(), attrs, cooc, low)
          .TotalCandidates();
  size_t here_count =
      PruneDomains(data.dataset.dirty(), noisy.cells(), attrs, cooc, here)
          .TotalCandidates();
  EXPECT_LE(here_count, low_count);
}

TEST_P(TauSweep, PipelineProducesValidMarginals) {
  GeneratedData data = MakeHospital({300, 0.05, 62});
  HoloCleanConfig config;
  config.tau = GetParam();
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  for (const CellPosterior& p : report.value().posteriors) {
    EXPECT_GT(p.map_prob, 0.0);
    EXPECT_LE(p.map_prob, 1.0 + 1e-9);
  }
  for (const Repair& r : report.value().repairs) {
    EXPECT_NE(r.new_value, r.old_value);
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, TauSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

// τ quality tradeoff across the whole pipeline: recall at high τ must not
// exceed recall at low τ by more than noise.
TEST(TauTradeoff, RecallDecreasesAcrossSweep) {
  double recall_low = 0.0;
  double recall_high = 0.0;
  {
    GeneratedData data = MakeFood({1200, 0.06, 63});
    HoloCleanConfig config;
    config.tau = 0.3;
    auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
    ASSERT_TRUE(report.ok());
    recall_low = EvaluateRepairs(data.dataset, report.value().repairs).recall;
  }
  {
    GeneratedData data = MakeFood({1200, 0.06, 63});
    HoloCleanConfig config;
    config.tau = 0.9;
    auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
    ASSERT_TRUE(report.ok());
    recall_high =
        EvaluateRepairs(data.dataset, report.value().repairs).recall;
  }
  EXPECT_LE(recall_high, recall_low + 0.02);
}

// ---------- Error-rate sweep: graceful degradation ----------

class ErrorRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ErrorRateSweep, PrecisionStaysHighOnHospital) {
  GeneratedData data = MakeHospital({400, GetParam(), 64});
  HoloCleanConfig config;
  config.tau = 0.5;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  EvalResult e = EvaluateRepairs(data.dataset, report.value().repairs);
  EXPECT_GT(e.precision, 0.8) << "error rate " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rates, ErrorRateSweep,
                         ::testing::Values(0.02, 0.05, 0.10, 0.15));

// ---------- Detector invariants on random instances ----------

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, NoisyCellsAreExactlyViolationCells) {
  GeneratedData data = MakeHospital({200, 0.08, GetParam()});
  ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
  auto violations = detector.Detect();
  NoisyCells noisy = ViolationDetector::NoisyFromViolations(violations);
  // Every violation cell is noisy and every noisy cell appears in some
  // violation (definitional round trip).
  size_t from_violations = 0;
  std::unordered_set<CellRef, CellRefHash> seen;
  for (const auto& v : violations) {
    for (const auto& c : v.cells) {
      EXPECT_TRUE(noisy.Contains(c));
      if (seen.insert(c).second) ++from_violations;
    }
  }
  EXPECT_EQ(from_violations, noisy.size());
}

TEST_P(SeedSweep, RepairsOnlyTouchNoisyCells) {
  GeneratedData data = MakeHospital({200, 0.08, GetParam()});
  ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
  NoisyCells noisy =
      ViolationDetector::NoisyFromViolations(detector.Detect());
  HoloCleanConfig config;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  for (const Repair& r : report.value().repairs) {
    EXPECT_TRUE(noisy.Contains(r.cell));
  }
}

TEST_P(SeedSweep, PosteriorsCoverEveryNoisyCell) {
  GeneratedData data = MakeHospital({200, 0.08, GetParam()});
  HoloCleanConfig config;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().posteriors.size(),
            report.value().stats.num_noisy_cells);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(71, 72, 73, 74, 75));

// ---------- Idempotence: repairing repaired data changes little ----------

TEST(Idempotence, SecondPassMakesFewRepairs) {
  GeneratedData data = MakeHospital({400, 0.05, 65});
  HoloCleanConfig config;
  config.tau = 0.5;
  auto first = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(first.ok());
  first.value().Apply(&data.dataset.dirty());
  auto second = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second.value().repairs.size(),
            first.value().repairs.size() / 2 + 5);
}

}  // namespace
}  // namespace holoclean
