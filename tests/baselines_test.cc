#include <gtest/gtest.h>

#include "holoclean/baselines/holistic.h"
#include "holoclean/baselines/katara.h"
#include "holoclean/baselines/scare.h"
#include "holoclean/constraints/parser.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/data/hospital.h"
#include "holoclean/detect/violation_detector.h"

namespace holoclean {
namespace {

// A majority-friendly FD instance with *two* dependencies targeting the
// erroneous attribute, mirroring the real datasets (there the dependent
// cell accumulates the highest conflict degree, so the greedy vertex cover
// actually selects it; with a single FD the key cell ties and Holistic can
// stall — its documented weakness).
struct MajorityFixture {
  MajorityFixture() : dataset([] {
    Table dirty(Schema({"Key", "Dep", "Zip"}),
                std::make_shared<Dictionary>());
    for (int i = 0; i < 4; ++i) dirty.AppendRow({"k", "right", "z"});
    dirty.AppendRow({"k", "wrong", "z"});
    dirty.AppendRow({"other", "x", "y"});
    return Dataset(std::move(dirty));
  }()) {
    Table clean = dataset.dirty().Clone();
    clean.SetString(4, 1, "right");
    dataset.set_clean(std::move(clean));
    auto parsed = ParseDenialConstraints(
        "t1&t2&EQ(t1.Key,t2.Key)&IQ(t1.Dep,t2.Dep)\n"
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.Dep,t2.Dep)",
        dataset.dirty().schema());
    EXPECT_TRUE(parsed.ok());
    dcs = parsed.value();
  }
  Dataset dataset;
  std::vector<DenialConstraint> dcs;
};

TEST(Holistic, RepairsMinorityToMajority) {
  MajorityFixture f;
  Holistic holistic;
  auto repairs = holistic.Run(f.dataset, f.dcs);
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].cell, (CellRef{4, 1}));
  EXPECT_EQ(f.dataset.dirty().dict().GetString(repairs[0].new_value),
            "right");
  EvalResult e = EvaluateRepairs(f.dataset, repairs);
  EXPECT_DOUBLE_EQ(e.precision, 1.0);
  EXPECT_DOUBLE_EQ(e.recall, 1.0);
}

TEST(Holistic, ResultSatisfiesConstraints) {
  MajorityFixture f;
  Holistic holistic;
  auto repairs = holistic.Run(f.dataset, f.dcs);
  Table repaired = f.dataset.dirty().Clone();
  for (const Repair& r : repairs) repaired.Set(r.cell, r.new_value);
  ViolationDetector detector(&repaired, &f.dcs);
  EXPECT_TRUE(detector.Detect().empty());
}

TEST(Holistic, NoViolationsNoRepairs) {
  Table t(Schema({"Key", "Dep"}), std::make_shared<Dictionary>());
  t.AppendRow({"k", "v"});
  t.AppendRow({"k", "v"});
  Dataset dataset(std::move(t));
  auto dcs = ParseDenialConstraints(
      "t1&t2&EQ(t1.Key,t2.Key)&IQ(t1.Dep,t2.Dep)", dataset.dirty().schema());
  ASSERT_TRUE(dcs.ok());
  EXPECT_TRUE(Holistic().Run(dataset, dcs.value()).empty());
}

TEST(Holistic, TieBreaksDeterministically) {
  // 1-vs-1 conflict: minimality cannot decide by majority; the repair must
  // still be deterministic.
  Table t(Schema({"Key", "Dep", "Zip"}), std::make_shared<Dictionary>());
  t.AppendRow({"k", "bbb", "z"});
  t.AppendRow({"k", "aaa", "z"});
  Dataset dataset(std::move(t));
  auto dcs = ParseDenialConstraints(
      "t1&t2&EQ(t1.Key,t2.Key)&IQ(t1.Dep,t2.Dep)\n"
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.Dep,t2.Dep)",
      dataset.dirty().schema());
  ASSERT_TRUE(dcs.ok());
  auto r1 = Holistic().Run(dataset, dcs.value());
  auto r2 = Holistic().Run(dataset, dcs.value());
  ASSERT_FALSE(r1.empty());
  ASSERT_EQ(r1.size(), r2.size());
  EXPECT_EQ(r1[0].new_value, r2[0].new_value);
}

// ---------- KATARA ----------

TEST(Katara, RepairsDictionaryDisagreements) {
  GeneratedData data = MakeHospital({400, 0.05, 11});
  Katara katara;
  auto repairs = katara.Run(&data.dataset, data.dicts, data.mds);
  ASSERT_FALSE(repairs.empty());
  EvalResult e = EvaluateRepairs(data.dataset, repairs);
  // KATARA's profile: high precision, recall bounded by dictionary scope
  // (it can only fix City/State/ZipCode cells).
  EXPECT_GT(e.precision, 0.9);
  EXPECT_LT(e.recall, 0.6);
  EXPECT_GT(e.recall, 0.0);
}

TEST(Katara, NoDictionariesNoRepairs) {
  GeneratedData data = MakeHospital({100, 0.05, 12});
  ExtDictCollection empty;
  Katara katara;
  EXPECT_TRUE(katara.Run(&data.dataset, empty, data.mds).empty());
}

TEST(Katara, SkipsAmbiguousSuggestions) {
  // Dictionary maps the same city to two zips: ambiguous, must be skipped.
  Table data_table(Schema({"City", "Zip"}), std::make_shared<Dictionary>());
  data_table.AppendRow({"Chicago", "99999"});
  Dataset dataset(std::move(data_table));
  ExtDictCollection dicts;
  Table listing(Schema({"Ext_City", "Ext_Zip"}),
                std::make_shared<Dictionary>());
  listing.AppendRow({"Chicago", "60608"});
  listing.AppendRow({"Chicago", "60609"});
  int k = dicts.Add("zips", std::move(listing));
  std::vector<MatchingDependency> mds = {
      {"city->zip", k, {{"City", "Ext_City"}}, "Zip", "Ext_Zip"}};
  EXPECT_TRUE(Katara().Run(&dataset, dicts, mds).empty());
}

// ---------- SCARE ----------

TEST(Scare, RepairsStatisticalOutlier) {
  Table t(Schema({"City", "Zip"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 40; ++i) t.AppendRow({"Chicago", "60608"});
  for (int i = 0; i < 40; ++i) t.AppendRow({"Evanston", "60201"});
  t.AppendRow({"Chicago", "60201"});  // Unlikely combination.
  Table clean = t.Clone();
  clean.SetString(80, 0, "Evanston");
  Dataset dataset(std::move(t));
  dataset.set_clean(std::move(clean));

  Scare::Options options;
  options.min_likelihood_gain = 1.0;
  Scare scare(options);
  auto repairs = scare.Run(dataset);
  bool fixed = false;
  for (const Repair& r : repairs) {
    if (r.cell == (CellRef{80, 0}) &&
        dataset.dirty().dict().GetString(r.new_value) == "Evanston") {
      fixed = true;
    }
  }
  EXPECT_TRUE(fixed);
}

TEST(Scare, BoundedChangesPerTuple) {
  GeneratedData data = MakeHospital({300, 0.15, 13});
  Scare::Options options;
  options.max_changes_per_tuple = 1;
  options.min_likelihood_gain = 0.5;
  auto repairs = Scare(options).Run(data.dataset);
  std::unordered_map<TupleId, int> per_tuple;
  for (const Repair& r : repairs) ++per_tuple[r.cell.tid];
  for (const auto& [tid, n] : per_tuple) EXPECT_LE(n, 1);
}

TEST(Scare, FewerRepairsOnCleanThanDirtyData) {
  // SCARE is a likelihood heuristic and makes some spurious repairs even on
  // clean data (its paper precision on Hospital is only 0.667); but clean
  // data must trigger clearly fewer modifications than dirty data.
  GeneratedData data = MakeHospital({300, 0.08, 14});
  Dataset clean_ds(data.dataset.clean().Clone());
  clean_ds.set_clean(data.dataset.clean().Clone());
  size_t on_clean = Scare().Run(clean_ds).size();
  size_t on_dirty = Scare().Run(data.dataset).size();
  EXPECT_LT(on_clean, on_dirty);
  EXPECT_LT(on_clean, clean_ds.dirty().num_rows());
}

}  // namespace
}  // namespace holoclean
