// Tests for the Engine API: owned input bundles, concurrent batch runs
// over the shared pool (bit-identical to sequential standalone sessions
// for any pool size), per-job failure isolation, the restore-into-pool
// path, the bounded session LRU, the shared dictionary arena, and the
// session move guarantees under the shared-pool model.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "holoclean/core/engine.h"
#include "holoclean/data/food.h"

#include "session_helpers.h"

namespace holoclean {
namespace {

HoloCleanConfig TestConfig() {
  HoloCleanConfig config;
  config.tau = 0.5;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 5;
  config.gibbs_samples = 20;
  return config;
}

std::shared_ptr<GeneratedData> MakeVariant(size_t i, size_t rows = 500) {
  FoodOptions options;
  options.num_rows = rows;
  options.error_rate = 0.05 + 0.01 * static_cast<double>(i);
  options.seed = 7100 + i;
  return std::make_shared<GeneratedData>(MakeFood(options));
}

CleaningInputs InputsOf(const std::shared_ptr<GeneratedData>& data) {
  return CleaningInputs::Owned(
      std::shared_ptr<Dataset>(data, &data->dataset),
      std::shared_ptr<const std::vector<DenialConstraint>>(data,
                                                           &data->dcs));
}

void ExpectReportsEqual(const Report& a, const Report& b) {
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].cell, b.repairs[i].cell);
    EXPECT_EQ(a.repairs[i].old_value, b.repairs[i].old_value);
    EXPECT_EQ(a.repairs[i].new_value, b.repairs[i].new_value);
    EXPECT_DOUBLE_EQ(a.repairs[i].probability, b.repairs[i].probability);
  }
  ASSERT_EQ(a.posteriors.size(), b.posteriors.size());
  for (size_t i = 0; i < a.posteriors.size(); ++i) {
    EXPECT_EQ(a.posteriors[i].cell, b.posteriors[i].cell);
    EXPECT_EQ(a.posteriors[i].map_value, b.posteriors[i].map_value);
    EXPECT_DOUBLE_EQ(a.posteriors[i].map_prob, b.posteriors[i].map_prob);
  }
  EXPECT_EQ(a.stats.num_noisy_cells, b.stats.num_noisy_cells);
  EXPECT_EQ(a.stats.num_query_vars, b.stats.num_query_vars);
  EXPECT_EQ(a.stats.num_grounded_factors, b.stats.num_grounded_factors);
}

TEST(EngineBatch, BitIdenticalToSequentialStandaloneRunsAnyPoolSize) {
  constexpr size_t kJobs = 4;
  HoloCleanConfig config = TestConfig();

  // The sequential baseline: standalone facade sessions with private
  // pools, one per job, using the batch's derived per-job seeds.
  std::vector<Report> baseline;
  for (size_t i = 0; i < kJobs; ++i) {
    auto data = MakeVariant(i);
    HoloCleanConfig job_config = config;
    job_config.seed = Engine::PerJobSeed(config.seed, i);
    auto report = CleanOnce(CleaningInputs::Borrowed(&data->dataset, &data->dcs), {job_config});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    baseline.push_back(std::move(report).value());
  }

  for (size_t pool_size : {size_t{1}, size_t{2}, size_t{4}}) {
    EngineOptions options;
    options.num_threads = pool_size;
    Engine engine(options);
    std::vector<std::shared_ptr<GeneratedData>> fleet;
    std::vector<CleaningInputs> inputs;
    for (size_t i = 0; i < kJobs; ++i) {
      fleet.push_back(MakeVariant(i));
      inputs.push_back(InputsOf(fleet.back()));
    }
    SessionOptions common;
    common.config = config;
    auto futures = engine.SubmitBatch(std::move(inputs), common);
    ASSERT_EQ(futures.size(), kJobs);
    for (size_t i = 0; i < kJobs; ++i) {
      Result<Report> result = futures[i].get();
      ASSERT_TRUE(result.ok())
          << "pool " << pool_size << ": " << result.status().ToString();
      ExpectReportsEqual(result.value(), baseline[i]);
      // Batch consumers get the learned weights without a session handle.
      ASSERT_NE(result.value().learned_weights, nullptr);
      ASSERT_NE(baseline[i].learned_weights, nullptr);
      EXPECT_EQ(result.value().learned_weights->raw(),
                baseline[i].learned_weights->raw());
    }
  }
}

TEST(EngineBatch, FailingJobDoesNotPoisonSiblings) {
  Engine engine;
  auto good = MakeVariant(0);
  std::vector<Engine::BatchJob> jobs(3);
  jobs[0].inputs = InputsOf(good);
  jobs[0].options.config = TestConfig();
  // Job 1: no dataset at all.
  jobs[1].options.config = TestConfig();
  // Job 2: a dataset but a null constraint set.
  auto other = MakeVariant(1);
  jobs[2].inputs =
      CleaningInputs::Owned(std::shared_ptr<Dataset>(other, &other->dataset),
                            nullptr);
  jobs[2].options.config = TestConfig();

  auto futures = engine.SubmitBatch(std::move(jobs));
  Result<Report> ok = futures[0].get();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(ok.value().repairs.empty());

  Result<Report> no_dataset = futures[1].get();
  ASSERT_FALSE(no_dataset.ok());
  EXPECT_EQ(no_dataset.status().code(), StatusCode::kInvalidArgument);

  Result<Report> no_dcs = futures[2].get();
  ASSERT_FALSE(no_dcs.ok());
  EXPECT_EQ(no_dcs.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineSession, OwnedInputsOutliveTheCallersHandles) {
  Engine engine;
  Result<Session> opened = [&engine]() {
    auto data = MakeVariant(0);
    SessionOptions session_options;
    session_options.config = TestConfig();
    // Only the bundle keeps `data` alive once this scope ends.
    return engine.OpenSession(InputsOf(data), session_options);
  }();
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Session session = std::move(opened).value();
  auto report = session.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().repairs.empty());
  EXPECT_GT(session.weights().size(), 0u);
}

TEST(EngineSession, RestoreIntoPoolMatchesFacadeRestore) {
  auto data = MakeVariant(0);
  HoloCleanConfig config = TestConfig();

  // Save a snapshot at full completion from a standalone session.
  std::string path = ::testing::TempDir() + "engine_restore.snapshot";
  Report original;
  {
    auto opened = test_helpers::OpenSessionOver(config, &data->dataset, data->dcs);
    ASSERT_TRUE(opened.ok());
    Session session = std::move(opened).value();
    auto report = session.Run();
    ASSERT_TRUE(report.ok());
    original = std::move(report).value();
    ASSERT_TRUE(session.Save(path).ok());
  }

  // Facade restore (private pool).
  Report facade_report;
  {
    auto restored = test_helpers::RestoreSessionOver(config, path, &data->dataset, data->dcs);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    Session session = std::move(restored).value();
    ASSERT_TRUE(session.StageIsValid(StageId::kRepair));
    session.Invalidate(StageId::kInfer);
    auto rerun = session.Run();
    ASSERT_TRUE(rerun.ok());
    facade_report = std::move(rerun).value();
  }

  // Engine restore into the shared pool.
  {
    Engine engine;
    SessionOptions options;
    options.config = config;
    options.snapshot_path = path;
    auto restored = engine.OpenSession(InputsOf(data), options);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    Session session = std::move(restored).value();
    EXPECT_TRUE(session.uses_shared_pool());
    ASSERT_TRUE(session.StageIsValid(StageId::kRepair));
    EXPECT_EQ(session.context().ground_runs, 1u);
    session.Invalidate(StageId::kInfer);
    auto rerun = session.Run();
    ASSERT_TRUE(rerun.ok());
    // Rerun-from-infer against the restored graph: no re-grounding, and
    // bit-identical repairs on both pool models.
    EXPECT_EQ(session.context().ground_runs, 1u);
    ExpectReportsEqual(rerun.value(), facade_report);
    ExpectReportsEqual(rerun.value(), original);
  }
}

TEST(EngineSessionCache, ServingRoundReusesParkedSessions) {
  EngineOptions options;
  options.session_cache_capacity = 2;
  Engine engine(options);
  auto data = MakeVariant(0);

  SessionOptions session_options;
  session_options.config = TestConfig();
  session_options.cache_key = "tenant-a";

  Result<Report> first = engine.Submit(InputsOf(data), session_options).get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(engine.cached_sessions(), 1u);
  for (const StageTiming& t : first.value().stats.stage_timings) {
    EXPECT_FALSE(t.cached) << t.name;
  }

  Result<Report> second =
      engine.Submit(InputsOf(data), session_options).get();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Every stage was still valid: the parked session served the report
  // from cache, bit-identically.
  for (const StageTiming& t : second.value().stats.stage_timings) {
    EXPECT_TRUE(t.cached) << t.name;
  }
  ExpectReportsEqual(first.value(), second.value());
  EXPECT_EQ(engine.cached_sessions(), 1u);
}

TEST(EngineSessionCache, BoundedLruEvictsLeastRecentlyUsed) {
  EngineOptions options;
  options.session_cache_capacity = 2;
  Engine engine(options);
  std::vector<std::shared_ptr<GeneratedData>> fleet;
  for (size_t i = 0; i < 3; ++i) {
    fleet.push_back(MakeVariant(i, 200));
    SessionOptions session_options;
    session_options.config = TestConfig();
    auto opened = engine.OpenSession(InputsOf(fleet[i]), session_options);
    ASSERT_TRUE(opened.ok());
    engine.CacheSession("key-" + std::to_string(i),
                        std::move(opened).value());
  }
  EXPECT_EQ(engine.cached_sessions(), 2u);
  EXPECT_FALSE(engine.HasCachedSession("key-0"));  // Evicted.
  EXPECT_TRUE(engine.HasCachedSession("key-1"));
  EXPECT_TRUE(engine.HasCachedSession("key-2"));
  EXPECT_TRUE(engine.TakeCachedSession("key-1").has_value());
  EXPECT_EQ(engine.cached_sessions(), 1u);
}

TEST(EngineSessionCache, BorrowedBundlesAreNeverParked) {
  // A parked session outlives the submitting caller, so only fully owned
  // bundles may enter the LRU: parking borrowed pointers would hand a
  // later cache hit freed inputs.
  Engine engine;
  auto data = MakeVariant(0, 200);
  EXPECT_FALSE(
      CleaningInputs::Borrowed(&data->dataset, &data->dcs).FullyOwned());
  EXPECT_TRUE(InputsOf(data).FullyOwned());

  SessionOptions session_options;
  session_options.config = TestConfig();
  session_options.cache_key = "borrowed-key";
  Result<Report> report =
      engine
          .Submit(CleaningInputs::Borrowed(&data->dataset, &data->dcs),
                  session_options)
          .get();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(engine.HasCachedSession("borrowed-key"));
  EXPECT_EQ(engine.cached_sessions(), 0u);

  // The explicit parking API refuses borrowed bundles too.
  SessionOptions cold;
  cold.config = TestConfig();
  auto opened = engine.OpenSession(
      CleaningInputs::Borrowed(&data->dataset, &data->dcs), cold);
  ASSERT_TRUE(opened.ok());
  engine.CacheSession("borrowed-key", std::move(opened).value());
  EXPECT_FALSE(engine.HasCachedSession("borrowed-key"));
}

TEST(EngineSessionCache, MismatchedInputsOpenCold) {
  Engine engine;
  auto data_a = MakeVariant(0, 200);
  auto data_b = MakeVariant(1, 200);
  SessionOptions session_options;
  session_options.config = TestConfig();
  session_options.cache_key = "shared-key";

  ASSERT_TRUE(engine.Submit(InputsOf(data_a), session_options).get().ok());
  EXPECT_TRUE(engine.HasCachedSession("shared-key"));

  // Same key, different dataset object: the parked session is not
  // compatible, so the job opens cold (no stage is marked cached).
  Result<Report> other =
      engine.Submit(InputsOf(data_b), session_options).get();
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  for (const StageTiming& t : other.value().stats.stage_timings) {
    EXPECT_FALSE(t.cached) << t.name;
  }
}

TEST(EngineSession, MoveKeepsPoolWiringAndInertsTheSource) {
  auto data = MakeVariant(0, 300);
  HoloCleanConfig config = TestConfig();
  config.num_threads = 2;

  // Private-pool session: move-construct right after a parallel run (the
  // pool queue may still hold drained TaskGroup helpers) and keep using
  // the destination after the source is gone.
  {
    auto opened = test_helpers::OpenSessionOver(config, &data->dataset, data->dcs);
    ASSERT_TRUE(opened.ok());
    Session session = std::move(opened).value();
    ASSERT_TRUE(session.RunThrough(StageId::kCompile).ok());
    Session moved = std::move(session);
    EXPECT_EQ(session.context().pool, nullptr);     // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(session.context().dataset, nullptr);  // NOLINT(bugprone-use-after-move)
    auto report = moved.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report.value().repairs.empty());
  }

  // Move-assignment over a session that already ran on its own pool: the
  // old pool (and any stale helper tasks it still queues) must tear down
  // cleanly, and the adopted session must stay runnable.
  {
    auto first = test_helpers::OpenSessionOver(config, &data->dataset, data->dcs);
    auto second = test_helpers::OpenSessionOver(config, &data->dataset, data->dcs);
    ASSERT_TRUE(first.ok() && second.ok());
    Session target = std::move(first).value();
    ASSERT_TRUE(target.Run().ok());
    Session source = std::move(second).value();
    ASSERT_TRUE(source.RunThrough(StageId::kDetect).ok());
    target = std::move(source);
    EXPECT_EQ(source.context().dataset, nullptr);  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(target.StageIsValid(StageId::kDetect));
    EXPECT_FALSE(target.StageIsValid(StageId::kCompile));
    ASSERT_TRUE(target.Run().ok());
  }

  // Shared-pool sessions: the pool outlives any one session; moving must
  // keep the shared wiring and the engine's pool alive.
  {
    Engine engine;
    SessionOptions session_options;
    session_options.config = TestConfig();
    auto opened = engine.OpenSession(InputsOf(data), session_options);
    ASSERT_TRUE(opened.ok());
    Session session = std::move(opened).value();
    ASSERT_TRUE(session.RunThrough(StageId::kCompile).ok());
    Session moved = std::move(session);
    EXPECT_TRUE(moved.uses_shared_pool());
    EXPECT_FALSE(session.uses_shared_pool());  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(moved.Run().ok());
  }
}

TEST(CleanOnce, ReportCarriesLearnedWeightsMatchingSession) {
  auto data = MakeVariant(0, 300);
  HoloCleanConfig config = TestConfig();
  auto report = test_helpers::RunOnce(config, &data->dataset, data->dcs);
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report.value().learned_weights, nullptr);
  EXPECT_GT(report.value().learned_weights->size(), 0u);

  // The one-shot report's weights match a staged session's live store for
  // the same inputs and seed.
  auto fresh = MakeVariant(0, 300);
  auto opened = test_helpers::OpenSessionOver(config, &fresh->dataset,
                                              fresh->dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.Run().ok());
  EXPECT_EQ(session.weights().raw(), report.value().learned_weights->raw());
}

TEST(EnginePerJobSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(Engine::PerJobSeed(42, 0), 42u);  // Job 0 keeps the base seed.
  EXPECT_EQ(Engine::PerJobSeed(42, 3), Engine::PerJobSeed(42, 3));
  EXPECT_NE(Engine::PerJobSeed(42, 1), Engine::PerJobSeed(42, 2));
  EXPECT_NE(Engine::PerJobSeed(42, 1), Engine::PerJobSeed(43, 1));
}

TEST(EngineDictionaryArena, StampedDictionariesShareTheIdPrefix) {
  Engine engine;
  Dictionary vocab;
  vocab.Intern("Chicago");
  vocab.Intern("IL");
  vocab.Intern("60608");
  engine.SeedDictionary(vocab);

  std::shared_ptr<Dictionary> a = engine.NewDictionary();
  std::shared_ptr<Dictionary> b = engine.NewDictionary();
  ASSERT_NE(a, b);  // Distinct dictionaries: no cross-job mutation races.
  EXPECT_EQ(a->size(), vocab.size());
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_EQ(a->GetString(static_cast<ValueId>(i)),
              vocab.GetString(static_cast<ValueId>(i)));
    EXPECT_EQ(b->GetString(static_cast<ValueId>(i)),
              vocab.GetString(static_cast<ValueId>(i)));
  }
  // Diverging on top of the shared prefix is local to each copy.
  ValueId in_a = a->Intern("Springfield");
  EXPECT_FALSE(b->Contains("Springfield"));
  EXPECT_EQ(a->GetString(in_a), "Springfield");
}

TEST(EngineSpill, CapacityEvictionSpillsAndTheNextJobRestores) {
  EngineOptions options;
  options.session_cache_capacity = 1;
  options.spill_directory = ::testing::TempDir();
  Engine engine(options);
  auto data_a = MakeVariant(0, 200);
  auto data_b = MakeVariant(1, 200);

  SessionOptions opts_a;
  opts_a.config = TestConfig();
  opts_a.cache_key = "spill-a";
  SessionOptions opts_b = opts_a;
  opts_b.cache_key = "spill-b";

  Result<Report> first = engine.Submit(InputsOf(data_a), opts_a).get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(engine.HasCachedSession("spill-a"));
  EXPECT_FALSE(engine.HasSpilledSession("spill-a"));

  // b's job parks over capacity: a's session is evicted into a snapshot.
  ASSERT_TRUE(engine.Submit(InputsOf(data_b), opts_b).get().ok());
  EXPECT_FALSE(engine.HasCachedSession("spill-a"));
  EXPECT_TRUE(engine.HasSpilledSession("spill-a"));

  // a's next job restores from the spill instead of recomputing: every
  // stage is served from the snapshot's cached artifacts, bit-identically.
  Result<Report> restored = engine.Submit(InputsOf(data_a), opts_a).get();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const StageTiming& t : restored.value().stats.stage_timings) {
    EXPECT_TRUE(t.cached) << t.name;
  }
  ExpectReportsEqual(first.value(), restored.value());
  // Spilled snapshots are single-use; the session is parked again now.
  EXPECT_FALSE(engine.HasSpilledSession("spill-a"));
  EXPECT_TRUE(engine.HasCachedSession("spill-a"));
}

TEST(EngineSpill, MismatchedInputsIgnoreTheSpillAndOpenCold) {
  EngineOptions options;
  options.session_cache_capacity = 1;
  options.spill_directory = ::testing::TempDir();
  Engine engine(options);
  auto data_a = MakeVariant(0, 200);
  auto data_b = MakeVariant(1, 200);
  auto data_c = MakeVariant(2, 200);

  SessionOptions shared;
  shared.config = TestConfig();
  shared.cache_key = "contested-key";
  ASSERT_TRUE(engine.Submit(InputsOf(data_a), shared).get().ok());
  SessionOptions other = shared;
  other.cache_key = "other-key";
  ASSERT_TRUE(engine.Submit(InputsOf(data_c), other).get().ok());
  ASSERT_TRUE(engine.HasSpilledSession("contested-key"));

  // A different dataset under the spilled key must not restore a's state.
  Result<Report> cold = engine.Submit(InputsOf(data_b), shared).get();
  ASSERT_TRUE(cold.ok());
  for (const StageTiming& t : cold.value().stats.stage_timings) {
    EXPECT_FALSE(t.cached) << t.name;
  }
  // The incompatible spill entry was discarded (single-use either way).
  EXPECT_FALSE(engine.HasSpilledSession("contested-key"));
}

TEST(EngineDrain, TakeAllCachedSessionsRoundTripsThroughSnapshots) {
  std::vector<std::shared_ptr<GeneratedData>> fleet;
  std::vector<Result<Report>> originals;
  std::vector<std::pair<std::string, Session>> drained;

  {
    Engine engine;
    SessionOptions session_options;
    session_options.config = TestConfig();
    for (size_t i = 0; i < 2; ++i) {
      fleet.push_back(MakeVariant(i, 200));
      session_options.cache_key = "drain-" + std::to_string(i);
      originals.push_back(
          engine.Submit(InputsOf(fleet[i]), session_options).get());
      ASSERT_TRUE(originals[i].ok());
    }
    // MRU first: the most recently parked key leads.
    std::vector<std::string> keys = engine.CachedSessionKeys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "drain-1");
    EXPECT_EQ(keys[1], "drain-0");

    drained = engine.TakeAllCachedSessions();
    EXPECT_EQ(engine.cached_sessions(), 0u);
    ASSERT_EQ(drained.size(), 2u);
    for (auto& [key, session] : drained) {
      ASSERT_TRUE(
          session.Save(::testing::TempDir() + key + ".snapshot").ok());
    }
    drained.clear();  // Sessions die with the old engine: only disk survives.
  }

  // A fresh engine (fresh pool, empty LRU) restores each snapshot and
  // serves the same reports from fully cached stages.
  Engine reborn;
  for (size_t i = 0; i < 2; ++i) {
    const std::string key = "drain-" + std::to_string(i);
    SessionOptions restore_options;
    restore_options.config = TestConfig();
    restore_options.snapshot_path = ::testing::TempDir() + key + ".snapshot";
    auto session = reborn.OpenSession(InputsOf(fleet[i]), restore_options);
    ASSERT_TRUE(session.ok()) << session.status();
    reborn.CacheSession(key, std::move(session).value());
  }
  SessionOptions session_options;
  session_options.config = TestConfig();
  for (size_t i = 0; i < 2; ++i) {
    session_options.cache_key = "drain-" + std::to_string(i);
    Result<Report> resumed =
        reborn.Submit(InputsOf(fleet[i]), session_options).get();
    ASSERT_TRUE(resumed.ok());
    for (const StageTiming& t : resumed.value().stats.stage_timings) {
      EXPECT_TRUE(t.cached) << t.name;
    }
    ExpectReportsEqual(originals[i].value(), resumed.value());
  }
}

}  // namespace
}  // namespace holoclean
