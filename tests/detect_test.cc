#include <gtest/gtest.h>

#include <set>

#include "holoclean/constraints/parser.h"
#include "holoclean/data/hospital.h"
#include "holoclean/detect/conflict_hypergraph.h"
#include "holoclean/detect/error_detector.h"
#include "holoclean/detect/null_detector.h"
#include "holoclean/detect/numeric_outlier_detector.h"
#include "holoclean/detect/outlier_detector.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/util/rng.h"

namespace holoclean {
namespace {

Table FdTable() {
  Table t(Schema({"Name", "Zip", "City"}), std::make_shared<Dictionary>());
  t.AppendRow({"a", "60608", "Chicago"});   // 0
  t.AppendRow({"a", "60609", "Chicago"});   // 1: violates Name->Zip with 0.
  t.AppendRow({"b", "60608", "Cicago"});    // 2: violates Zip->City with 0.
  t.AppendRow({"c", "60610", "Evanston"});  // 3: clean.
  return t;
}

std::vector<DenialConstraint> FdDcs(const Schema& s) {
  auto dcs = ParseDenialConstraints(
      "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Zip,t2.Zip)\n"
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n",
      s);
  EXPECT_TRUE(dcs.ok());
  return dcs.value();
}

TEST(ViolationDetector, FindsExpectedViolations) {
  Table t = FdTable();
  auto dcs = FdDcs(t.schema());
  ViolationDetector detector(&t, &dcs);
  auto violations = detector.Detect();
  ASSERT_EQ(violations.size(), 2u);
  std::set<std::pair<int, std::pair<TupleId, TupleId>>> found;
  for (const auto& v : violations) {
    found.insert({v.dc_index,
                  {std::min(v.t1, v.t2), std::max(v.t1, v.t2)}});
  }
  EXPECT_TRUE(found.count({0, {0, 1}}) > 0);
  EXPECT_TRUE(found.count({1, {0, 2}}) > 0);
}

TEST(ViolationDetector, ViolationCellsCoverPredicates) {
  Table t = FdTable();
  auto dcs = FdDcs(t.schema());
  ViolationDetector detector(&t, &dcs);
  for (const auto& v : detector.Detect()) {
    // FD violations touch 4 cells: the key and dependent attr of each tuple.
    EXPECT_EQ(v.cells.size(), 4u);
  }
}

TEST(ViolationDetector, NoisyFromViolations) {
  Table t = FdTable();
  auto dcs = FdDcs(t.schema());
  ViolationDetector detector(&t, &dcs);
  NoisyCells noisy =
      ViolationDetector::NoisyFromViolations(detector.Detect());
  EXPECT_TRUE(noisy.Contains({0, 1}));   // t0.Zip.
  EXPECT_TRUE(noisy.Contains({1, 1}));   // t1.Zip.
  EXPECT_TRUE(noisy.Contains({2, 2}));   // t2.City.
  EXPECT_FALSE(noisy.Contains({3, 0}));  // Clean tuple untouched.
}

TEST(ViolationDetector, SingleTupleConstraint) {
  Table t = FdTable();
  auto dcs = ParseDenialConstraints("t1&EQ(t1.City,\"Cicago\")", t.schema());
  ASSERT_TRUE(dcs.ok());
  ViolationDetector detector(&t, &dcs.value());
  auto violations = detector.Detect();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].t1, 2);
  EXPECT_EQ(violations[0].t2, 2);
}

TEST(ViolationDetector, BlockingMatchesBruteForceProperty) {
  // Property: the hash-blocked detector finds exactly the unordered pairs a
  // brute-force double loop finds, on random tables.
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Table t(Schema({"K", "V"}), std::make_shared<Dictionary>());
    for (int i = 0; i < 60; ++i) {
      t.AppendRow({"k" + std::to_string(rng.Below(6)),
                   "v" + std::to_string(rng.Below(4))});
    }
    auto dcs = ParseDenialConstraints(
        "t1&t2&EQ(t1.K,t2.K)&IQ(t1.V,t2.V)", t.schema());
    ASSERT_TRUE(dcs.ok());
    ViolationDetector detector(&t, &dcs.value());
    auto violations = detector.Detect();

    std::set<std::pair<TupleId, TupleId>> expected;
    DcEvaluator eval(&t);
    for (size_t i = 0; i < t.num_rows(); ++i) {
      for (size_t j = 0; j < t.num_rows(); ++j) {
        if (i == j) continue;
        if (eval.Violates(dcs.value()[0], static_cast<TupleId>(i),
                          static_cast<TupleId>(j))) {
          expected.insert({static_cast<TupleId>(std::min(i, j)),
                           static_cast<TupleId>(std::max(i, j))});
        }
      }
    }
    std::set<std::pair<TupleId, TupleId>> got;
    for (const auto& v : violations) {
      got.insert({std::min(v.t1, v.t2), std::max(v.t1, v.t2)});
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(ViolationDetector, CleanTableHasNoViolations) {
  GeneratedData data = MakeHospital({200, 0.05, 5});
  Table clean = data.dataset.clean().Clone();
  ViolationDetector detector(&clean, &data.dcs);
  EXPECT_TRUE(detector.Detect().empty());
}

// ---------- ConflictHypergraph ----------

TEST(ConflictHypergraph, AdjacencyAndDegree) {
  Table t = FdTable();
  auto dcs = FdDcs(t.schema());
  ViolationDetector detector(&t, &dcs);
  ConflictHypergraph graph(detector.Detect());
  EXPECT_EQ(graph.edges().size(), 2u);
  // t0.Zip participates in both violations (FD1 with t1, FD2 with t2).
  EXPECT_EQ(graph.Degree({0, 1}), 2u);
  EXPECT_EQ(graph.Degree({3, 0}), 0u);
  EXPECT_FALSE(graph.Nodes().empty());
}

// ---------- Null / Outlier detectors ----------

TEST(NullDetector, FlagsEmptyCells) {
  Table t(Schema({"A", "B"}), std::make_shared<Dictionary>());
  t.AppendRow({"x", ""});
  t.AppendRow({"", "y"});
  t.AppendRow({"x", "y"});
  Dataset dataset(std::move(t));
  NullDetector detector;
  NoisyCells noisy = detector.Detect(dataset);
  EXPECT_EQ(noisy.size(), 2u);
  EXPECT_TRUE(noisy.Contains({0, 1}));
  EXPECT_TRUE(noisy.Contains({1, 0}));
}

TEST(NullDetector, SkipsSourceColumn) {
  Table t(Schema({"A", "Src"}), std::make_shared<Dictionary>());
  t.AppendRow({"x", ""});
  Dataset dataset(std::move(t));
  dataset.set_source_attr(1);
  EXPECT_EQ(NullDetector().Detect(dataset).size(), 0u);
}

TEST(OutlierDetector, FlagsConditionallyRareValue) {
  Table t(Schema({"City", "Zip"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 30; ++i) t.AppendRow({"Chicago", "60608"});
  t.AppendRow({"Cicago", "60608"});  // Rare, conflicts with common context.
  Dataset dataset(std::move(t));
  OutlierDetector detector;
  NoisyCells noisy = detector.Detect(dataset);
  EXPECT_TRUE(noisy.Contains({30, 0}));
  EXPECT_FALSE(noisy.Contains({0, 0}));
}

TEST(OutlierDetector, RareButConsistentIsNotOutlier) {
  Table t(Schema({"City", "Zip"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 30; ++i) t.AppendRow({"Chicago", "60608"});
  // A unique but internally consistent row: its context is also unique,
  // so there is no common context contradicting it.
  t.AppendRow({"Evanston", "60201"});
  Dataset dataset(std::move(t));
  NoisyCells noisy = OutlierDetector().Detect(dataset);
  EXPECT_FALSE(noisy.Contains({30, 0}));
}

TEST(NumericOutlierDetector, FlagsExtremeAndNonNumericValues) {
  Table t(Schema({"Amount"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 40; ++i) t.AppendRow({std::to_string(50 + i % 10)});
  t.AppendRow({"99999"});  // Extreme value.
  t.AppendRow({"5x"});     // Typo in a numeric column.
  Dataset dataset(std::move(t));
  NumericOutlierDetector detector;
  NoisyCells noisy = detector.Detect(dataset);
  EXPECT_TRUE(noisy.Contains({40, 0}));
  EXPECT_TRUE(noisy.Contains({41, 0}));
  EXPECT_FALSE(noisy.Contains({0, 0}));
}

TEST(NumericOutlierDetector, IgnoresTextColumns) {
  Table t(Schema({"Name"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 20; ++i) t.AppendRow({"alice"});
  t.AppendRow({"42"});
  Dataset dataset(std::move(t));
  EXPECT_EQ(NumericOutlierDetector().Detect(dataset).size(), 0u);
}

// ---------- DetectorSuite ----------

TEST(DetectorSuite, UnionsDetectors) {
  Table t(Schema({"Name", "Zip"}), std::make_shared<Dictionary>());
  t.AppendRow({"a", "60608"});
  t.AppendRow({"a", "60609"});
  t.AppendRow({"", "60610"});
  Dataset dataset(std::move(t));
  auto dcs = ParseDenialConstraints(
      "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Zip,t2.Zip)",
      dataset.dirty().schema());
  ASSERT_TRUE(dcs.ok());
  DetectorSuite suite;
  suite.Add(std::make_unique<DcViolationDetector>(dcs.value()));
  suite.Add(std::make_unique<NullDetector>());
  NoisyCells noisy = suite.Detect(dataset);
  EXPECT_TRUE(noisy.Contains({0, 1}));  // Violation cell.
  EXPECT_TRUE(noisy.Contains({2, 0}));  // Null cell.
  EXPECT_EQ(suite.size(), 2u);
}

}  // namespace
}  // namespace holoclean
