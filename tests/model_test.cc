#include <gtest/gtest.h>

#include "holoclean/constraints/parser.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/model/domain_pruning.h"
#include "holoclean/model/feature_registry.h"
#include "holoclean/model/grounding.h"
#include "holoclean/model/partitioning.h"
#include "holoclean/model/weight_store.h"

namespace holoclean {
namespace {

// ---------- WeightKeyCodec ----------

TEST(WeightKeyCodec, PackUnpackRoundTrip) {
  uint64_t key = WeightKeyCodec::Pack(FeatureKind::kCooccurrence, 7, 13,
                                      123456, 654321);
  EXPECT_EQ(WeightKeyCodec::Kind(key), FeatureKind::kCooccurrence);
  EXPECT_EQ(WeightKeyCodec::P1(key), 7u);
  EXPECT_EQ(WeightKeyCodec::P2(key), 13u);
  EXPECT_EQ(WeightKeyCodec::Ctx(key), 123456u);
  EXPECT_EQ(WeightKeyCodec::Value(key), 654321u);
}

TEST(WeightKeyCodec, DistinctFeaturesDistinctKeys) {
  uint64_t a = WeightKeyCodec::Pack(FeatureKind::kCooccurrence, 1, 2, 3, 4);
  uint64_t b = WeightKeyCodec::Pack(FeatureKind::kCooccurrence, 1, 2, 4, 3);
  uint64_t c = WeightKeyCodec::Pack(FeatureKind::kDcViolation, 1, 2, 3, 4);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(WeightKeyCodec, DescribeMentionsAttributeNames) {
  Schema schema({"City", "Zip"});
  Dictionary dict;
  ValueId chicago = dict.Intern("Chicago");
  ValueId z = dict.Intern("60608");
  uint64_t key = WeightKeyCodec::Pack(
      FeatureKind::kCooccurrence, 0, 1, static_cast<uint32_t>(z),
      static_cast<uint32_t>(chicago));
  std::string text = WeightKeyCodec::Describe(key, schema, dict);
  EXPECT_NE(text.find("City"), std::string::npos);
  EXPECT_NE(text.find("Chicago"), std::string::npos);
  EXPECT_NE(text.find("60608"), std::string::npos);
}

// ---------- WeightStore ----------

TEST(WeightStore, DefaultZeroAndUpdates) {
  WeightStore w;
  EXPECT_DOUBLE_EQ(w.Get(1), 0.0);
  w.Set(1, 2.0);
  w.Add(1, 0.5);
  EXPECT_DOUBLE_EQ(w.Get(1), 2.5);
  EXPECT_EQ(w.size(), 1u);
}

TEST(WeightStore, ShrinkAll) {
  WeightStore w;
  w.Set(1, 2.0);
  w.Set(2, -4.0);
  w.ShrinkAll(0.5);
  EXPECT_DOUBLE_EQ(w.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(w.Get(2), -2.0);
}

TEST(WeightStore, TopByMagnitude) {
  WeightStore w;
  w.Set(1, 0.5);
  w.Set(2, -3.0);
  w.Set(3, 1.5);
  auto top = w.TopByMagnitude(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 3u);
}

TEST(WeightStore, TopByMagnitudeDeterministicAcrossInsertionOrders) {
  // Many equal-magnitude entries (including opposite signs) inserted in
  // opposite orders: the ranking must tie-break on the packed key, never
  // on the unordered_map's iteration order.
  WeightStore forward, backward;
  for (uint64_t k = 0; k < 64; ++k) {
    forward.Set(k, k % 2 == 0 ? 1.5 : -1.5);
  }
  for (uint64_t k = 64; k-- > 0;) {
    backward.Set(k, k % 2 == 0 ? 1.5 : -1.5);
  }
  auto top_fwd = forward.TopByMagnitude(10);
  auto top_bwd = backward.TopByMagnitude(10);
  ASSERT_EQ(top_fwd.size(), 10u);
  ASSERT_EQ(top_fwd, top_bwd);
  for (size_t i = 0; i < top_fwd.size(); ++i) {
    EXPECT_EQ(top_fwd[i].first, i);  // Keys ascending within the tie.
  }
}

// ---------- Domain pruning (Algorithm 2) ----------

struct PruningFixture {
  PruningFixture() : table(Schema({"City", "Zip"}),
                           std::make_shared<Dictionary>()) {
    for (int i = 0; i < 8; ++i) table.AppendRow({"Chicago", "60608"});
    for (int i = 0; i < 2; ++i) table.AppendRow({"Evanston", "60608"});
    table.AppendRow({"Cicago", "60608"});  // The noisy cell (t10, City).
    attrs = {0, 1};
    cooc = CooccurrenceStats::Build(table, attrs);
  }
  Table table;
  std::vector<AttrId> attrs;
  CooccurrenceStats cooc;
};

TEST(DomainPruning, ThresholdSelectsCooccurringValues) {
  PruningFixture f;
  DomainPruningOptions options;
  options.tau = 0.5;
  PrunedDomains domains = PruneDomains(
      f.table, {{10, 0}}, f.attrs, f.cooc, options);
  const auto& cand = domains.For({10, 0});
  // Init value always first, then Chicago (8/11 >= 0.5).
  ASSERT_GE(cand.size(), 2u);
  EXPECT_EQ(f.table.dict().GetString(cand[0]), "Cicago");
  EXPECT_EQ(f.table.dict().GetString(cand[1]), "Chicago");
  // Evanston (2/11) is pruned at tau=0.5.
  for (ValueId v : cand) {
    EXPECT_NE(f.table.dict().GetString(v), "Evanston");
  }
}

TEST(DomainPruning, LowerTauGivesSupersetProperty) {
  // Property (Algorithm 2): candidates at higher tau are a subset of
  // candidates at lower tau.
  PruningFixture f;
  std::vector<CellRef> cells = {{10, 0}, {0, 1}, {9, 0}};
  for (double hi : {0.5, 0.7, 0.9}) {
    DomainPruningOptions low_options;
    low_options.tau = 0.3;
    DomainPruningOptions high_options;
    high_options.tau = hi;
    PrunedDomains low = PruneDomains(f.table, cells, f.attrs, f.cooc,
                                     low_options);
    PrunedDomains high = PruneDomains(f.table, cells, f.attrs, f.cooc,
                                      high_options);
    for (const CellRef& c : cells) {
      for (ValueId v : high.For(c)) {
        const auto& low_cand = low.For(c);
        EXPECT_NE(std::find(low_cand.begin(), low_cand.end(), v),
                  low_cand.end())
            << "tau=" << hi;
      }
    }
  }
}

TEST(DomainPruning, InitValueAlwaysIncluded) {
  PruningFixture f;
  DomainPruningOptions options;
  options.tau = 0.99;  // Prunes almost everything.
  PrunedDomains domains =
      PruneDomains(f.table, {{10, 0}}, f.attrs, f.cooc, options);
  const auto& cand = domains.For({10, 0});
  ASSERT_FALSE(cand.empty());
  EXPECT_EQ(cand[0], f.table.Get(10, 0));
}

TEST(DomainPruning, MaxCandidatesCap) {
  Table t(Schema({"A", "B"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 50; ++i) {
    t.AppendRow({"a" + std::to_string(i), "ctx"});
  }
  CooccurrenceStats cooc = CooccurrenceStats::Build(t, {0, 1});
  DomainPruningOptions options;
  options.tau = 0.0;
  options.max_candidates = 5;
  PrunedDomains domains = PruneDomains(t, {{0, 0}}, {0, 1}, cooc, options);
  EXPECT_LE(domains.For({0, 0}).size(), 6u);  // Cap + init value.
}

TEST(DomainPruning, TotalCandidatesSums) {
  PruningFixture f;
  DomainPruningOptions options;
  PrunedDomains domains = PruneDomains(f.table, {{10, 0}, {0, 0}}, f.attrs,
                                       f.cooc, options);
  EXPECT_EQ(domains.TotalCandidates(),
            domains.For({10, 0}).size() + domains.For({0, 0}).size());
}

// ---------- Partitioning (Algorithm 3) ----------

TEST(Partitioning, ConnectedComponentsPerConstraint) {
  std::vector<Violation> violations;
  violations.push_back({0, 0, 1, {}});
  violations.push_back({0, 1, 2, {}});
  violations.push_back({0, 5, 6, {}});
  violations.push_back({1, 0, 9, {}});
  TupleGroups groups = BuildTupleGroups(10, 2, violations);
  ASSERT_EQ(groups.groups_per_dc.size(), 2u);
  // DC 0: {0,1,2} and {5,6}.
  ASSERT_EQ(groups.groups_per_dc[0].size(), 2u);
  EXPECT_EQ(groups.groups_per_dc[0][0],
            (std::vector<TupleId>{0, 1, 2}));
  EXPECT_EQ(groups.groups_per_dc[0][1], (std::vector<TupleId>{5, 6}));
  // DC 1: {0,9}.
  ASSERT_EQ(groups.groups_per_dc[1].size(), 1u);
  EXPECT_EQ(groups.groups_per_dc[1][0], (std::vector<TupleId>{0, 9}));
  // Pairs: C(3,2) + C(2,2) + C(2,2) = 3 + 1 + 1.
  EXPECT_EQ(groups.TotalPairs(), 5u);
}

TEST(Partitioning, ViolatingPairsStayInSameGroupProperty) {
  // Property: every violating pair ends up in some group of its constraint.
  std::vector<Violation> violations;
  for (int i = 0; i < 20; i += 2) {
    violations.push_back({0, i, i + 1, {}});
  }
  TupleGroups groups = BuildTupleGroups(20, 1, violations);
  for (const auto& v : violations) {
    bool together = false;
    for (const auto& g : groups.groups_per_dc[0]) {
      bool has1 = std::find(g.begin(), g.end(), v.t1) != g.end();
      bool has2 = std::find(g.begin(), g.end(), v.t2) != g.end();
      if (has1 && has2) together = true;
      EXPECT_EQ(has1, has2);  // Never split a violating pair.
    }
    EXPECT_TRUE(together);
  }
}

TEST(Partitioning, EmptyViolationsEmptyGroups) {
  TupleGroups groups = BuildTupleGroups(10, 3, {});
  for (const auto& g : groups.groups_per_dc) EXPECT_TRUE(g.empty());
  EXPECT_EQ(groups.TotalPairs(), 0u);
}

// ---------- Grounding ----------

struct GroundingFixture {
  GroundingFixture()
      : table(Schema({"Name", "Zip", "City"}),
              std::make_shared<Dictionary>()) {
    table.AppendRow({"a", "60608", "Chicago"});
    table.AppendRow({"a", "60609", "Chicago"});
    table.AppendRow({"b", "60608", "Chicago"});
    table.AppendRow({"b", "60608", "Cicago"});
    table.AppendRow({"c", "60610", "Evanston"});
    attrs = {0, 1, 2};
    auto parsed = ParseDenialConstraints(
        "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Zip,t2.Zip)\n"
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n",
        table.schema());
    EXPECT_TRUE(parsed.ok());
    dcs = parsed.value();
    cooc = CooccurrenceStats::Build(table, attrs);
    ViolationDetector detector(&table, &dcs);
    violations = detector.Detect();
    noisy = ViolationDetector::NoisyFromViolations(violations);
    for (size_t t = 0; t < table.num_rows(); ++t) {
      for (AttrId a : attrs) {
        CellRef c{static_cast<TupleId>(t), a};
        if (!noisy.Contains(c)) evidence.push_back(c);
      }
    }
    DomainPruningOptions prune;
    prune.tau = 0.2;
    std::vector<CellRef> all = noisy.cells();
    all.insert(all.end(), evidence.begin(), evidence.end());
    domains = PruneDomains(table, all, attrs, cooc, prune);

    input.table = &table;
    input.dcs = &dcs;
    input.attrs = &attrs;
    input.query_cells = &noisy.cells();
    input.evidence_cells = &evidence;
    input.domains = &domains;
    input.cooc = &cooc;
    input.violations = &violations;
  }

  Table table;
  std::vector<AttrId> attrs;
  std::vector<DenialConstraint> dcs;
  CooccurrenceStats cooc;
  std::vector<Violation> violations;
  NoisyCells noisy;
  std::vector<CellRef> evidence;
  PrunedDomains domains;
  GroundingInput input;
};

TEST(Grounding, RelaxedModeHasNoDcFactors) {
  GroundingFixture f;
  GroundingOptions options;
  options.dc_mode = DcMode::kFeatures;
  Grounder grounder(f.input, options);
  auto graph = grounder.Ground();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph.value().dc_factors().empty());
  EXPECT_EQ(graph.value().query_vars().size(), f.noisy.size());
  EXPECT_GT(graph.value().evidence_vars().size(), 0u);
}

TEST(Grounding, FactorModeGroundsPairFactors) {
  GroundingFixture f;
  GroundingOptions options;
  options.dc_mode = DcMode::kFactors;
  Grounder grounder(f.input, options);
  auto graph = grounder.Ground();
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(graph.value().dc_factors().size(), 0u);
  for (const DcFactor& factor : graph.value().dc_factors()) {
    EXPECT_FALSE(factor.var_ids.empty());
    EXPECT_DOUBLE_EQ(factor.weight, options.dc_factor_weight);
    for (int32_t v : factor.var_ids) {
      EXPECT_FALSE(graph.value().variable(v).is_evidence);
    }
  }
}

TEST(Grounding, PartitioningNeverIncreasesFactors) {
  GroundingFixture f;
  GroundingOptions options;
  options.dc_mode = DcMode::kFactors;
  options.use_partitioning = false;
  Grounder without(f.input, options);
  auto graph_without = without.Ground();
  ASSERT_TRUE(graph_without.ok());
  options.use_partitioning = true;
  Grounder with(f.input, options);
  auto graph_with = with.Ground();
  ASSERT_TRUE(graph_with.ok());
  EXPECT_LE(graph_with.value().dc_factors().size(),
            graph_without.value().dc_factors().size());
}

TEST(Grounding, MinimalityPriorOnInitValue) {
  GroundingFixture f;
  GroundingOptions options;
  options.minimality_weight = 1.5;
  Grounder grounder(f.input, options);
  auto graph = grounder.Ground();
  ASSERT_TRUE(graph.ok());
  for (const Variable& var : graph.value().variables()) {
    ASSERT_GE(var.init_index, 0);
    for (size_t k = 0; k < var.NumCandidates(); ++k) {
      double expected = static_cast<int>(k) == var.init_index ? 1.5 : 0.0;
      EXPECT_DOUBLE_EQ(var.prior_bias[k], expected);
    }
  }
}

TEST(Grounding, ViolationFeatureDiscriminatesCandidates) {
  GroundingFixture f;
  GroundingOptions options;
  options.dc_mode = DcMode::kFeatures;
  Grounder grounder(f.input, options);
  auto graph = grounder.Ground();
  ASSERT_TRUE(graph.ok());
  // Variable for t3.City ("Cicago"): candidate "Chicago" resolves the
  // zip->city violation, so keeping "Cicago" must carry a DC-violation
  // feature while "Chicago" must not.
  int var_id = graph.value().VarOfCell({3, 2});
  ASSERT_GE(var_id, 0);
  const Variable& var = graph.value().variable(var_id);
  ValueId cicago = f.table.dict().Lookup("Cicago");
  ValueId chicago = f.table.dict().Lookup("Chicago");
  auto violation_weight = [&](ValueId value) {
    float total = 0.0f;
    for (size_t k = 0; k < var.NumCandidates(); ++k) {
      if (var.domain[k] != value) continue;
      for (int32_t i = var.feat_begin[k]; i < var.feat_begin[k + 1]; ++i) {
        if (WeightKeyCodec::Kind(var.features[i].weight_key) ==
            FeatureKind::kDcViolation) {
          total += var.features[i].activation;
        }
      }
    }
    return total;
  };
  EXPECT_GT(violation_weight(cicago), 0.0f);
  EXPECT_EQ(violation_weight(chicago), 0.0f);
}

TEST(Grounding, UnaryScoreUsesWeights) {
  GroundingFixture f;
  GroundingOptions options;
  Grounder grounder(f.input, options);
  auto graph = grounder.Ground();
  ASSERT_TRUE(graph.ok());
  const FactorGraph& g = graph.value();
  ASSERT_GT(g.num_variables(), 0u);
  WeightStore weights;
  // With all-zero weights the score equals the prior bias.
  const Variable& var = g.variable(0);
  EXPECT_DOUBLE_EQ(g.UnaryScore(0, var.init_index, weights),
                   var.prior_bias[static_cast<size_t>(var.init_index)]);
  // Raising a feature weight raises the score of candidates carrying it.
  if (var.feat_begin[1] > 0) {
    uint64_t key = var.features[0].weight_key;
    weights.Set(key, 1.0);
    EXPECT_GT(g.UnaryScore(0, 0, weights),
              var.prior_bias[0] - 1e-12);
  }
}

TEST(Grounding, StatsAreConsistent) {
  GroundingFixture f;
  GroundingOptions options;
  options.dc_mode = DcMode::kBoth;
  Grounder grounder(f.input, options);
  auto graph = grounder.Ground();
  ASSERT_TRUE(graph.ok());
  const Grounder::Stats& stats = grounder.stats();
  EXPECT_EQ(stats.num_query_vars, graph.value().query_vars().size());
  EXPECT_EQ(stats.num_evidence_vars, graph.value().evidence_vars().size());
  EXPECT_EQ(stats.num_dc_factors, graph.value().dc_factors().size());
  EXPECT_GT(graph.value().NumGroundedFactors(), stats.num_dc_factors);
}

}  // namespace
}  // namespace holoclean
