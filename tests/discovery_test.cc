#include <gtest/gtest.h>

#include "holoclean/data/hospital.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/discovery/fd_discovery.h"

namespace holoclean {
namespace {

FdDiscoveryOptions Defaults() {
  FdDiscoveryOptions options;
  return options;
}

Table ZipCityTable(int errors) {
  Table t(Schema({"Zip", "City", "Row"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 50; ++i) {
    const char* city = i % 2 == 0 ? "Chicago" : "Evanston";
    const char* zip = i % 2 == 0 ? "60608" : "60201";
    t.AppendRow({zip, (errors-- > 0) ? "Typo" : city,
                 std::to_string(i)});  // "Row" is a key: never an FD target.
  }
  return t;
}

bool Contains(const std::vector<DiscoveredFd>& fds, const Table& t,
              const std::string& text) {
  for (const auto& fd : fds) {
    if (fd.ToString(t.schema()) == text) return true;
  }
  return false;
}

TEST(FdDiscovery, FindsExactFd) {
  Table t = ZipCityTable(0);
  auto fds = DiscoverFds(t, Defaults());
  ASSERT_TRUE(Contains(fds, t, "Zip -> City"));
  for (const auto& fd : fds) {
    if (fd.ToString(t.schema()) == "Zip -> City") {
      EXPECT_DOUBLE_EQ(fd.error, 0.0);
      EXPECT_EQ(fd.support_groups, 2u);
    }
  }
}

TEST(FdDiscovery, ToleratesNoiseWithinBudget) {
  Table t = ZipCityTable(3);  // 3 corrupted dependents out of 50.
  FdDiscoveryOptions options;
  options.max_error = 0.1;
  auto fds = DiscoverFds(t, options);
  EXPECT_TRUE(Contains(fds, t, "Zip -> City"));
  options.max_error = 0.01;  // Below the injected 6% error.
  EXPECT_FALSE(Contains(DiscoverFds(t, options), t, "Zip -> City"));
}

TEST(FdDiscovery, KeysExcludedBothSides) {
  Table t = ZipCityTable(0);
  auto fds = DiscoverFds(t, Defaults());
  for (const auto& fd : fds) {
    EXPECT_NE(fd.lhs[0], t.schema().IndexOf("Row"));
    EXPECT_NE(fd.rhs, t.schema().IndexOf("Row"));
  }
}

TEST(FdDiscovery, ErrorIsSortedAscending) {
  Table t = ZipCityTable(4);
  auto fds = DiscoverFds(t, Defaults());
  for (size_t i = 0; i + 1 < fds.size(); ++i) {
    EXPECT_LE(fds[i].error, fds[i + 1].error);
  }
}

TEST(FdDiscovery, PairLhsOnlyWhenSinglesFail) {
  // C is determined by (A,B) jointly but by neither alone.
  Table t(Schema({"A", "B", "C"}), std::make_shared<Dictionary>());
  const char* as[] = {"a0", "a1"};
  const char* bs[] = {"b0", "b1"};
  for (int i = 0; i < 40; ++i) {
    int a = i % 2;
    int b = (i / 2) % 2;
    t.AppendRow({as[a], bs[b], "c" + std::to_string(a ^ b)});
  }
  FdDiscoveryOptions options;
  options.max_lhs_size = 2;
  options.max_error = 0.0;
  auto fds = DiscoverFds(t, options);
  EXPECT_TRUE(Contains(fds, t, "A,B -> C"));
  EXPECT_FALSE(Contains(fds, t, "A -> C"));
  EXPECT_FALSE(Contains(fds, t, "B -> C"));
  // Minimality: once A->C held, A,B->C would be pruned — here it must not
  // be, because no single-attribute FD covers C.
}

TEST(FdDiscovery, MinimalityPrunesRedundantPairs) {
  Table t = ZipCityTable(0);
  FdDiscoveryOptions options;
  options.max_lhs_size = 2;
  auto fds = DiscoverFds(t, options);
  // Zip -> City holds, so (Zip, X) -> City must be pruned.
  for (const auto& fd : fds) {
    if (fd.rhs == t.schema().IndexOf("City")) {
      EXPECT_EQ(fd.lhs.size(), 1u) << fd.ToString(t.schema());
    }
  }
}

TEST(FdDiscovery, RecoversHospitalConstraintsFromDirtyData) {
  // Profiling the *dirty* Hospital data with a 10% error budget recovers
  // the zip geography FDs that the benchmark declares.
  GeneratedData data = MakeHospital({800, 0.05, 97});
  FdDiscoveryOptions options;
  options.max_error = 0.1;
  auto fds = DiscoverFds(data.dataset.dirty(), options);
  const Table& t = data.dataset.dirty();
  EXPECT_TRUE(Contains(fds, t, "ZipCode -> City"));
  EXPECT_TRUE(Contains(fds, t, "ZipCode -> State"));
  EXPECT_TRUE(Contains(fds, t, "MeasureCode -> Condition"));
}

TEST(FdDiscovery, DiscoveredConstraintsDriveDetection) {
  Table t = ZipCityTable(3);
  auto fds = DiscoverFds(t, Defaults());
  auto dcs = ToDenialConstraints(t, fds);
  ASSERT_FALSE(dcs.empty());
  ViolationDetector detector(&t, &dcs);
  // The three corrupted cells participate in violations of Zip -> City.
  NoisyCells noisy =
      ViolationDetector::NoisyFromViolations(detector.Detect());
  AttrId city = t.schema().IndexOf("City");
  EXPECT_TRUE(noisy.Contains({0, city}));
  EXPECT_TRUE(noisy.Contains({2, city}));
}

TEST(FdDiscovery, EmptyTable) {
  Table t(Schema({"A", "B"}), std::make_shared<Dictionary>());
  EXPECT_TRUE(DiscoverFds(t, Defaults()).empty());
}

}  // namespace
}  // namespace holoclean
