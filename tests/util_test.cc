#include <gtest/gtest.h>

#include <set>

#include "holoclean/util/csv.h"
#include "holoclean/util/hash.h"
#include "holoclean/util/rng.h"
#include "holoclean/util/status.h"
#include "holoclean/util/string_util.h"
#include "holoclean/util/timer.h"
#include "holoclean/util/union_find.h"

namespace holoclean {
namespace {

// ---------- Status / Result ----------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tau");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tau");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tau");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kParseError, StatusCode::kInternal,
        StatusCode::kNotImplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  HOLO_ASSIGN_OR_RETURN(half, Halve(x));
  return Halve(half);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
}

// ---------- String utilities ----------

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtil, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"one", "two", "three"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringUtil, ToLower) { EXPECT_EQ(ToLower("AbC 1"), "abc 1"); }

TEST(StringUtil, IsNumeric) {
  EXPECT_TRUE(IsNumeric("42"));
  EXPECT_TRUE(IsNumeric("-3.5"));
  EXPECT_TRUE(IsNumeric(" 10 "));
  EXPECT_FALSE(IsNumeric("12:30"));
  EXPECT_FALSE(IsNumeric("abc"));
  EXPECT_FALSE(IsNumeric(""));
}

TEST(StringUtil, ParseDoubleOr) {
  EXPECT_DOUBLE_EQ(ParseDoubleOr("2.5", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(ParseDoubleOr("zzz", -1.0), -1.0);
}

TEST(StringUtil, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", "abd"), 1u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("Chicago", "Cicago"), 1u);
}

TEST(StringUtil, EditDistanceSymmetric) {
  EXPECT_EQ(EditDistance("flaw", "lawn"), EditDistance("lawn", "flaw"));
}

TEST(StringUtil, SimilarityRange) {
  EXPECT_DOUBLE_EQ(Similarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(Similarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(Similarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(Similarity("Chicago", "Cicago"), 1.0 - 1.0 / 7.0, 1e-9);
}

TEST(StringUtil, NormalizeForMatch) {
  EXPECT_EQ(NormalizeForMatch("  3465  S Morgan  ST "), "3465 s morgan st");
  EXPECT_EQ(NormalizeForMatch("ABC"), "abc");
}

// ---------- RNG ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 5);
}

TEST(Rng, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_EQ(std::multiset<int>(v.begin(), v.end()),
            std::multiset<int>(shuffled.begin(), shuffled.end()));
}

// ---------- Hash ----------

TEST(Hash, Mix64Distinct) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Hash, BytesDeterministic) {
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
}

// ---------- UnionFind ----------

TEST(UnionFind, BasicComponents) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.ComponentSize(1), 3u);
  EXPECT_EQ(uf.ComponentSize(5), 1u);
}

TEST(UnionFind, TransitiveClosureProperty) {
  // Union along a chain: everything becomes one component.
  UnionFind uf(64);
  for (size_t i = 0; i + 1 < 64; ++i) uf.Union(i, i + 1);
  for (size_t i = 0; i < 64; ++i) EXPECT_TRUE(uf.Connected(0, i));
  EXPECT_EQ(uf.ComponentSize(17), 64u);
}

// ---------- CSV ----------

TEST(Csv, ParsesSimpleDocument) {
  auto doc = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc.value().rows.size(), 2u);
  EXPECT_EQ(doc.value().rows[1][1], "4");
}

TEST(Csv, HandlesQuotingAndEscapes) {
  auto doc = ParseCsv("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows[0][0], "Smith, John");
  EXPECT_EQ(doc.value().rows[0][1], "said \"hi\"");
}

TEST(Csv, HandlesCrlfAndEmbeddedNewlines) {
  auto doc = ParseCsv("a,b\r\n\"x\ny\",2\r\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows[0][0], "x\ny");
}

TEST(Csv, RejectsArityMismatch) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(Csv, RejectsCharacterAfterClosingQuote) {
  // `"ab"x` is malformed: after a closing quote only a separator, record
  // terminator, or end of input may follow (it used to parse as `abx`).
  auto r = ParseCsv("a,b\n\"ab\"x,2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_FALSE(ParseCsv("a\n\"ab\" \n").ok());
  EXPECT_FALSE(ParseCsv("\"h\"x,b\n1,2\n").ok());  // In the header too.
  EXPECT_FALSE(ParseCsv("a\n\"\"x\n").ok());
  // A closing quote at a legal boundary still parses.
  auto ok = ParseCsv("a,b\n\"x\",\"y\"\n\"z\",w");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().rows[0][0], "x");
  EXPECT_EQ(ok.value().rows[1][1], "w");
}

TEST(Csv, RejectsQuoteInsideUnquotedField) {
  auto r = ParseCsv("a,b\nab\"cd,2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Csv, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(Csv, WriteParseRoundTrip) {
  CsvDocument doc;
  doc.header = {"name", "city"};
  doc.rows = {{"a,b", "x\"y"}, {"", "line\nbreak"}};
  auto parsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header, doc.header);
  EXPECT_EQ(parsed.value().rows, doc.rows);
}

TEST(Csv, MissingFileIsNotFound) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/nope.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.Seconds(), 0.0);
  t.Reset();
  EXPECT_GE(t.Millis(), 0.0);
}

}  // namespace
}  // namespace holoclean
