// Tests for streaming ingestion (src/holoclean/stream): differential
// equivalence of batched appends against cleaning the final table from
// scratch (exact mode: bit-identical violations, domains, and repairs
// across batch sizes, thread counts, and seeds), warm-mode guarantees
// (exact violations, bounded repair-quality divergence, resync restoring
// bit-identity), append-after-restore, failpoint-injected faults leaving
// the session cleanly recoverable, the append_rows wire op on a warm
// served session, and the storage/stats append primitives underneath
// (Table::Truncate, CooccurrenceStats::AppendRows).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "holoclean/core/evaluation.h"
#include "holoclean/data/hospital.h"
#include "holoclean/serve/protocol.h"
#include "holoclean/serve/server.h"
#include "holoclean/stats/cooccurrence.h"
#include "holoclean/stream/stream_session.h"
#include "holoclean/util/csv.h"
#include "holoclean/util/failpoint.h"
#include "session_helpers.h"

namespace holoclean {
namespace {

using test_helpers::OpenSessionOver;
using test_helpers::RestoreSessionOver;

/// The full generated table split into a base prefix and an append tail,
/// both as raw string rows (the form rows arrive in over every streaming
/// surface). The constraints are attribute-id based, so they apply to any
/// table built from the same header.
struct SplitData {
  CsvDocument base;            ///< Header + first `base_rows` dirty rows.
  CsvDocument full;            ///< Header + all dirty rows.
  CsvDocument clean_base;      ///< Header + first `base_rows` clean rows.
  std::vector<std::vector<std::string>> tail;        ///< Dirty tail rows.
  std::vector<std::vector<std::string>> clean_tail;  ///< Ground-truth tail.
  std::vector<DenialConstraint> dcs;
  std::string dc_text;         ///< Re-parsable constraint listing (wire).
};

SplitData MakeSplit(size_t total_rows, size_t base_rows, uint64_t seed) {
  HospitalOptions options;
  options.num_rows = total_rows;
  options.error_rate = 0.08;
  options.seed = seed;
  GeneratedData data = MakeHospital(options);
  SplitData split;
  split.full = data.dataset.dirty().ToCsv();
  CsvDocument clean_doc = data.dataset.clean().ToCsv();
  split.base.header = split.full.header;
  split.clean_base.header = clean_doc.header;
  for (size_t i = 0; i < split.full.rows.size(); ++i) {
    if (i < base_rows) {
      split.base.rows.push_back(split.full.rows[i]);
      split.clean_base.rows.push_back(clean_doc.rows[i]);
    } else {
      split.tail.push_back(split.full.rows[i]);
      split.clean_tail.push_back(clean_doc.rows[i]);
    }
  }
  for (const DenialConstraint& dc : data.dcs) {
    split.dc_text += dc.ToString(data.dataset.dirty().schema()) + "\n";
  }
  split.dcs = std::move(data.dcs);
  return split;
}

/// The three artifacts the differential asserts on.
struct Artifacts {
  std::vector<Violation> violations;
  std::unordered_map<CellRef, std::vector<ValueId>, CellRefHash> domains;
  std::vector<Repair> repairs;
};

Artifacts Capture(const Session& session, const Report& report) {
  Artifacts out;
  out.violations = session.context().violations;
  out.domains = session.context().domains.candidates;
  out.repairs = report.repairs;
  return out;
}

void ExpectViolationsEqual(const std::vector<Violation>& a,
                           const std::vector<Violation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dc_index, b[i].dc_index) << "violation " << i;
    EXPECT_EQ(a[i].t1, b[i].t1) << "violation " << i;
    EXPECT_EQ(a[i].t2, b[i].t2) << "violation " << i;
    ASSERT_EQ(a[i].cells.size(), b[i].cells.size()) << "violation " << i;
    for (size_t c = 0; c < a[i].cells.size(); ++c) {
      EXPECT_TRUE(a[i].cells[c] == b[i].cells[c]) << "violation " << i;
    }
  }
}

void ExpectRepairsBitIdentical(const std::vector<Repair>& a,
                               const std::vector<Repair>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].cell == b[i].cell) << "repair " << i;
    EXPECT_EQ(a[i].old_value, b[i].old_value) << "repair " << i;
    EXPECT_EQ(a[i].new_value, b[i].new_value) << "repair " << i;
    EXPECT_EQ(a[i].probability, b[i].probability) << "repair " << i;
  }
}

HoloCleanConfig FastConfig() {
  HoloCleanConfig config;
  config.tau = 0.5;
  config.epochs = 8;
  config.gibbs_burn_in = 3;
  config.gibbs_samples = 10;
  return config;
}

/// From-scratch reference: clean the full table in one cold session.
/// Both this and the streamed path intern values row-major from the same
/// CSV rows, so every ValueId (and hence every artifact) is comparable.
Artifacts RunScratch(const HoloCleanConfig& config, const SplitData& split) {
  auto table = Table::FromCsv(split.full);
  EXPECT_TRUE(table.ok()) << table.status();
  Dataset dataset(std::move(table).value());
  auto session = OpenSessionOver(config, &dataset, split.dcs);
  EXPECT_TRUE(session.ok()) << session.status();
  auto report = session.value().RunThrough(StageId::kRepair);
  EXPECT_TRUE(report.ok()) << report.status();
  return Capture(session.value(), report.value());
}

/// Streams the tail in `batch_rows`-sized batches over a warm base
/// session and returns the final artifacts plus the stream stats.
struct StreamOutcome {
  Artifacts artifacts;
  StreamStats stats;
};

StreamOutcome RunStreamed(const HoloCleanConfig& config,
                          const SplitData& split, size_t batch_rows,
                          StreamOptions stream_options) {
  auto table = Table::FromCsv(split.base);
  EXPECT_TRUE(table.ok()) << table.status();
  Dataset dataset(std::move(table).value());
  auto session = OpenSessionOver(config, &dataset, split.dcs);
  EXPECT_TRUE(session.ok()) << session.status();
  auto initial = session.value().RunThrough(StageId::kRepair);
  EXPECT_TRUE(initial.ok()) << initial.status();

  StreamSession stream(&session.value(), stream_options);
  Report report = initial.value();
  for (size_t begin = 0; begin < split.tail.size(); begin += batch_rows) {
    size_t end = begin + batch_rows < split.tail.size()
                     ? begin + batch_rows
                     : split.tail.size();
    std::vector<std::vector<std::string>> batch(
        split.tail.begin() + static_cast<std::ptrdiff_t>(begin),
        split.tail.begin() + static_cast<std::ptrdiff_t>(end));
    auto updated = stream.AppendRows(batch);
    EXPECT_TRUE(updated.ok()) << updated.status();
    if (!updated.ok()) break;
    report = updated.value();
  }
  StreamOutcome out;
  out.artifacts = Capture(session.value(), report);
  out.stats = stream.stats();
  return out;
}

// --- Exact-mode differential -------------------------------------------------

TEST(Stream, ExactModeIsBitIdenticalAcrossBatchSizes) {
  SplitData split = MakeSplit(168, 120, 4101);
  HoloCleanConfig config = FastConfig();
  Artifacts scratch = RunScratch(config, split);
  ASSERT_FALSE(scratch.repairs.empty());

  StreamOptions exact;
  exact.mode = StreamMode::kExact;
  for (size_t batch_rows : {size_t{1}, size_t{16}, size_t{64}}) {
    SCOPED_TRACE("batch_rows=" + std::to_string(batch_rows));
    StreamOutcome streamed = RunStreamed(config, split, batch_rows, exact);
    ExpectViolationsEqual(scratch.violations, streamed.artifacts.violations);
    EXPECT_EQ(scratch.domains, streamed.artifacts.domains);
    ExpectRepairsBitIdentical(scratch.repairs, streamed.artifacts.repairs);
    EXPECT_EQ(streamed.stats.appended_rows, split.tail.size());
    // Exact mode recompiles per batch but never counts compactions.
    EXPECT_EQ(streamed.stats.compactions, 0u);
    EXPECT_EQ(streamed.stats.appended_since_resync, 0u);
  }
}

TEST(Stream, ExactModeIsBitIdenticalAcrossThreadCountsAndSeeds) {
  for (uint64_t seed : {uint64_t{42}, uint64_t{7}}) {
    SplitData split = MakeSplit(160, 128, 5200 + seed);
    for (size_t threads : {size_t{0}, size_t{2}}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      HoloCleanConfig config = FastConfig();
      config.seed = seed;
      config.num_threads = threads;
      Artifacts scratch = RunScratch(config, split);
      StreamOptions exact;
      exact.mode = StreamMode::kExact;
      StreamOutcome streamed = RunStreamed(config, split, 16, exact);
      ExpectViolationsEqual(scratch.violations,
                            streamed.artifacts.violations);
      EXPECT_EQ(scratch.domains, streamed.artifacts.domains);
      ExpectRepairsBitIdentical(scratch.repairs, streamed.artifacts.repairs);
    }
  }
}

TEST(Stream, AppendOnNeverRunSessionFallsBackToFullRun) {
  SplitData split = MakeSplit(150, 120, 6300);
  HoloCleanConfig config = FastConfig();
  Artifacts scratch = RunScratch(config, split);

  auto table = Table::FromCsv(split.base);
  ASSERT_TRUE(table.ok());
  Dataset dataset(std::move(table).value());
  auto session = OpenSessionOver(config, &dataset, split.dcs);
  ASSERT_TRUE(session.ok());
  StreamSession stream(&session.value());  // No initial run.
  auto report = stream.AppendRows(split.tail);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(stream.stats().last_batch.full_run);
  Artifacts streamed = Capture(session.value(), report.value());
  ExpectViolationsEqual(scratch.violations, streamed.violations);
  EXPECT_EQ(scratch.domains, streamed.domains);
  ExpectRepairsBitIdentical(scratch.repairs, streamed.repairs);
}

// --- Warm mode ---------------------------------------------------------------

TEST(Stream, WarmModeViolationsExactAndQualityBounded) {
  SplitData split = MakeSplit(180, 132, 7400);
  HoloCleanConfig config = FastConfig();
  Artifacts scratch = RunScratch(config, split);

  // Threshold high enough that no batch triggers a resync: the model is
  // maintained purely incrementally across the whole tail.
  StreamOptions warm;
  warm.mode = StreamMode::kWarm;
  warm.compact_threshold = 10.0;

  auto table = Table::FromCsv(split.base);
  ASSERT_TRUE(table.ok());
  Dataset dataset(std::move(table).value());
  // Aligned ground truth so quality is scorable after the appends.
  {
    Table clean(dataset.dirty().schema(), dataset.dirty().dict_ptr());
    for (const auto& row : split.clean_base.rows) clean.AppendRow(row);
    dataset.set_clean(std::move(clean));
  }
  auto session = OpenSessionOver(config, &dataset, split.dcs);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value().RunThrough(StageId::kRepair).ok());

  StreamSession stream(&session.value(), warm);
  Report report;
  const size_t batch_rows = 16;
  for (size_t begin = 0; begin < split.tail.size(); begin += batch_rows) {
    size_t end = begin + batch_rows < split.tail.size()
                     ? begin + batch_rows
                     : split.tail.size();
    std::vector<std::vector<std::string>> batch(
        split.tail.begin() + static_cast<std::ptrdiff_t>(begin),
        split.tail.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<std::vector<std::string>> clean_batch(
        split.clean_tail.begin() + static_cast<std::ptrdiff_t>(begin),
        split.clean_tail.begin() + static_cast<std::ptrdiff_t>(end));
    auto updated = stream.AppendRows(batch, &clean_batch);
    ASSERT_TRUE(updated.ok()) << updated.status();
    EXPECT_FALSE(stream.stats().last_batch.resync);
    report = updated.value();
  }
  EXPECT_EQ(stream.stats().compactions, 0u);
  EXPECT_EQ(stream.stats().appended_since_resync, split.tail.size());

  // Detection is exact in every mode: violations match scratch bit for
  // bit even though the model was maintained incrementally.
  ExpectViolationsEqual(scratch.violations,
                        session.value().context().violations);

  // Repairs may diverge (warm-started weights), but quality must stay in
  // a bounded window of the from-scratch run.
  EvalResult warm_eval = EvaluateRepairs(dataset, report.repairs);
  auto scratch_table = Table::FromCsv(split.full);
  ASSERT_TRUE(scratch_table.ok());
  Dataset scratch_dataset(std::move(scratch_table).value());
  {
    Table clean(scratch_dataset.dirty().schema(),
                scratch_dataset.dirty().dict_ptr());
    for (const auto& row : split.clean_base.rows) clean.AppendRow(row);
    for (const auto& row : split.clean_tail) clean.AppendRow(row);
    scratch_dataset.set_clean(std::move(clean));
  }
  EvalResult scratch_eval =
      EvaluateRepairs(scratch_dataset, scratch.repairs);
  EXPECT_GE(warm_eval.f1, scratch_eval.f1 - 0.15)
      << "warm f1 " << warm_eval.f1 << " vs scratch f1 " << scratch_eval.f1;

  // An explicit resync compacts the appended arenas and restores
  // bit-identity with a from-scratch clean. The reference dataset must
  // replay the streamed dataset's exact interning order (base dirty,
  // base clean, then per batch the dirty rows followed by their clean
  // mirrors) so ValueIds line up — with a ground-truth table in play,
  // "the final table" includes the clean rows' dictionary entries.
  auto resynced = stream.Resync();
  ASSERT_TRUE(resynced.ok()) << resynced.status();
  EXPECT_EQ(stream.stats().compactions, 1u);
  EXPECT_EQ(stream.stats().appended_since_resync, 0u);
  Artifacts after = Capture(session.value(), resynced.value());

  auto replay_table = Table::FromCsv(split.base);
  ASSERT_TRUE(replay_table.ok());
  Dataset replay(std::move(replay_table).value());
  {
    Table clean(replay.dirty().schema(), replay.dirty().dict_ptr());
    for (const auto& row : split.clean_base.rows) clean.AppendRow(row);
    replay.set_clean(std::move(clean));
  }
  for (size_t begin = 0; begin < split.tail.size(); begin += batch_rows) {
    size_t end = begin + batch_rows < split.tail.size()
                     ? begin + batch_rows
                     : split.tail.size();
    for (size_t i = begin; i < end; ++i) {
      replay.dirty().AppendRow(split.tail[i]);
    }
    for (size_t i = begin; i < end; ++i) {
      replay.clean().AppendRow(split.clean_tail[i]);
    }
  }
  auto replay_session = OpenSessionOver(config, &replay, split.dcs);
  ASSERT_TRUE(replay_session.ok());
  auto replay_report = replay_session.value().RunThrough(StageId::kRepair);
  ASSERT_TRUE(replay_report.ok());
  Artifacts reference =
      Capture(replay_session.value(), replay_report.value());
  ExpectViolationsEqual(reference.violations, after.violations);
  EXPECT_EQ(reference.domains, after.domains);
  ExpectRepairsBitIdentical(reference.repairs, after.repairs);
}

TEST(Stream, WarmModeStalenessThresholdTriggersCompaction) {
  SplitData split = MakeSplit(160, 100, 8500);
  HoloCleanConfig config = FastConfig();
  StreamOptions warm;
  warm.mode = StreamMode::kWarm;
  warm.compact_threshold = 0.25;  // 25 rows over a 100-row base.
  StreamOutcome streamed = RunStreamed(config, split, 20, warm);
  EXPECT_GE(streamed.stats.compactions, 1u);
  // After compaction the streamed state equals the from-scratch clean if
  // the last batch resynced; either way violations stay exact.
  Artifacts scratch = RunScratch(config, split);
  ExpectViolationsEqual(scratch.violations, streamed.artifacts.violations);
}

// --- Restore interplay -------------------------------------------------------

TEST(Stream, AppendAfterSnapshotRestoreMatchesScratch) {
  SplitData split = MakeSplit(150, 120, 9600);
  HoloCleanConfig config = FastConfig();
  Artifacts scratch = RunScratch(config, split);

  std::string snapshot =
      ::testing::TempDir() + "stream_restore_snapshot.hcsnap";
  auto table = Table::FromCsv(split.base);
  ASSERT_TRUE(table.ok());
  Dataset dataset(std::move(table).value());
  {
    auto session = OpenSessionOver(config, &dataset, split.dcs);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value().RunThrough(StageId::kRepair).ok());
    ASSERT_TRUE(session.value().Save(snapshot, {}).ok());
  }
  auto restored = RestoreSessionOver(config, snapshot, &dataset, split.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();

  StreamOptions exact;
  exact.mode = StreamMode::kExact;
  StreamSession stream(&restored.value(), exact);
  auto report = stream.AppendRows(split.tail);
  ASSERT_TRUE(report.ok()) << report.status();
  Artifacts streamed = Capture(restored.value(), report.value());
  ExpectViolationsEqual(scratch.violations, streamed.violations);
  EXPECT_EQ(scratch.domains, streamed.domains);
  ExpectRepairsBitIdentical(scratch.repairs, streamed.repairs);
  std::remove(snapshot.c_str());
}

// --- Fault injection ---------------------------------------------------------

struct FailpointCase {
  const char* profile;
  bool rows_rolled_back;
};

TEST(Stream, InjectedFaultsRollBackAndStayRecoverable) {
  SplitData split = MakeSplit(140, 120, 1700);
  HoloCleanConfig config = FastConfig();
  Artifacts scratch = RunScratch(config, split);

  for (FailpointCase fc : std::vector<FailpointCase>{
           {"stream.append.intern=always/error", true},
           {"stream.append.detect=always/error", true},
           {"stream.append.commit=always/error", true}}) {
    SCOPED_TRACE(fc.profile);
    auto table = Table::FromCsv(split.base);
    ASSERT_TRUE(table.ok());
    Dataset dataset(std::move(table).value());
    auto session = OpenSessionOver(config, &dataset, split.dcs);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value().RunThrough(StageId::kRepair).ok());
    const size_t base_rows = dataset.dirty().num_rows();
    const size_t base_violations = session.value().context().violations.size();

    StreamOptions exact;
    exact.mode = StreamMode::kExact;
    StreamSession stream(&session.value(), exact);
    {
      ScopedFailpoints armed(fc.profile);
      auto failed = stream.AppendRows(split.tail);
      EXPECT_FALSE(failed.ok());
    }
    // The fault left no trace: table and detect artifacts are pre-batch.
    EXPECT_EQ(dataset.dirty().num_rows(), base_rows);
    EXPECT_EQ(session.value().context().violations.size(), base_violations);
    EXPECT_EQ(stream.stats().appended_rows, 0u);

    // The session is cleanly recoverable: the same append now succeeds
    // and the result matches the from-scratch clean exactly.
    auto report = stream.AppendRows(split.tail);
    ASSERT_TRUE(report.ok()) << report.status();
    Artifacts streamed = Capture(session.value(), report.value());
    ExpectViolationsEqual(scratch.violations, streamed.violations);
    ExpectRepairsBitIdentical(scratch.repairs, streamed.repairs);
  }
}

TEST(Stream, WarmIncrementalFaultDegradesToResyncNotCorruption) {
  SplitData split = MakeSplit(140, 120, 2800);
  HoloCleanConfig config = FastConfig();
  Artifacts scratch = RunScratch(config, split);

  auto table = Table::FromCsv(split.base);
  ASSERT_TRUE(table.ok());
  Dataset dataset(std::move(table).value());
  auto session = OpenSessionOver(config, &dataset, split.dcs);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value().RunThrough(StageId::kRepair).ok());

  StreamOptions warm;
  warm.mode = StreamMode::kWarm;
  warm.compact_threshold = 10.0;
  StreamSession stream(&session.value(), warm);
  ScopedFailpoints armed("stream.append.ground=always/error");
  auto report = stream.AppendRows(split.tail);
  // The incremental step failed, but the batch itself succeeds by
  // degrading to a full re-compile — which also restores bit-identity.
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(stream.stats().last_batch.resync);
  EXPECT_EQ(stream.stats().compactions, 1u);
  Artifacts streamed = Capture(session.value(), report.value());
  ExpectViolationsEqual(scratch.violations, streamed.violations);
  EXPECT_EQ(scratch.domains, streamed.domains);
  ExpectRepairsBitIdentical(scratch.repairs, streamed.repairs);
}

// --- Wire surface ------------------------------------------------------------

TEST(Stream, AppendRowsOverWireMatchesBatchBaseline) {
  SplitData split = MakeSplit(150, 120, 3900);

  serve::ServerOptions options;
  options.default_config = FastConfig();
  options.engine_threads = 2;
  serve::CleaningServer server(std::move(options));

  auto frame = [&](serve::Request req) { return server.Handle(req.ToJson()); };

  // Register the base table for the streaming tenant and the full table
  // as the batch baseline, then warm the streaming slot with a clean.
  serve::Request reg;
  reg.op = serve::Op::kRegisterDataset;
  reg.tenant = "stream";
  reg.dataset = "hospital";
  reg.csv_text = WriteCsv(split.base);
  reg.dc_text = split.dc_text;
  ASSERT_TRUE(frame(reg).GetBool("ok"));
  reg.tenant = "batch";
  reg.csv_text = WriteCsv(split.full);
  ASSERT_TRUE(frame(reg).GetBool("ok"));

  serve::Request clean;
  clean.op = serve::Op::kClean;
  clean.tenant = "stream";
  clean.dataset = "hospital";
  JsonValue warm_clean = frame(clean);
  ASSERT_TRUE(warm_clean.GetBool("ok")) << warm_clean.Dump();

  // Append the tail through the wire op on the warm session.
  serve::Request append;
  append.op = serve::Op::kAppendRows;
  append.tenant = "stream";
  append.dataset = "hospital";
  append.rows = split.tail;
  JsonValue appended = frame(append);
  ASSERT_TRUE(appended.GetBool("ok")) << appended.Dump();
  EXPECT_EQ(appended.GetInt("appended"),
            static_cast<int64_t>(split.tail.size()));
  EXPECT_EQ(appended.GetInt("rows"),
            static_cast<int64_t>(split.full.rows.size()));

  // The serve tier streams in exact mode: its repairs are bit-identical
  // to a batch clean of the full table.
  clean.tenant = "batch";
  JsonValue baseline = frame(clean);
  ASSERT_TRUE(baseline.GetBool("ok")) << baseline.Dump();
  const JsonValue* append_report = appended.Find("report");
  const JsonValue* baseline_report = baseline.Find("report");
  ASSERT_NE(append_report, nullptr);
  ASSERT_NE(baseline_report, nullptr);
  const JsonValue* append_repairs = append_report->Find("repairs");
  const JsonValue* baseline_repairs = baseline_report->Find("repairs");
  ASSERT_NE(append_repairs, nullptr);
  ASSERT_NE(baseline_repairs, nullptr);
  EXPECT_EQ(append_repairs->Dump(), baseline_repairs->Dump());

  // explain_status surfaces the per-session stream counters.
  serve::Request status;
  status.op = serve::Op::kExplainStatus;
  status.tenant = "stream";
  status.dataset = "hospital";
  JsonValue st = frame(status);
  ASSERT_TRUE(st.GetBool("ok")) << st.Dump();
  const JsonValue* stream_obj = st.Find("stream");
  ASSERT_NE(stream_obj, nullptr);
  EXPECT_EQ(stream_obj->GetInt("appended_rows"),
            static_cast<int64_t>(split.tail.size()));
  EXPECT_GE(stream_obj->GetInt("batches"), 1);

  serve::Request bad;
  bad.op = serve::Op::kAppendRows;
  bad.tenant = "stream";
  bad.dataset = "hospital";
  JsonValue rejected = frame(bad);  // Empty rows are an error.
  EXPECT_FALSE(rejected.GetBool("ok"));
}

// --- Append primitives -------------------------------------------------------

TEST(Stream, TableTruncateRestoresExactPreAppendState) {
  SplitData split = MakeSplit(130, 100, 1234);
  auto table = Table::FromCsv(split.base);
  ASSERT_TRUE(table.ok());
  Table original = table.value().Clone();
  Table& t = table.value();
  for (const auto& row : split.tail) t.AppendRow(row);
  ASSERT_EQ(t.num_rows(), split.full.rows.size());
  t.Truncate(original.num_rows());
  ASSERT_EQ(t.num_rows(), original.num_rows());
  for (size_t tid = 0; tid < t.num_rows(); ++tid) {
    for (AttrId a = 0; a < static_cast<AttrId>(t.schema().num_attrs()); ++a) {
      CellRef cell{static_cast<TupleId>(tid), a};
      EXPECT_EQ(t.Get(cell), original.Get(cell));
    }
  }
  // The serialized form round-trips too (codes, counts, and the decoded
  // mirror all rolled back together).
  EXPECT_EQ(WriteCsv(t.ToCsv()), WriteCsv(original.ToCsv()));
}

TEST(Stream, CooccurrenceAppendMatchesFullRebuild) {
  SplitData split = MakeSplit(140, 100, 4321);
  auto table = Table::FromCsv(split.base);
  ASSERT_TRUE(table.ok());
  Table& t = table.value();
  std::vector<AttrId> attrs;
  for (AttrId a = 0; a < static_cast<AttrId>(t.schema().num_attrs()); ++a) {
    attrs.push_back(a);
  }
  CooccurrenceStats incremental = CooccurrenceStats::BuildColumnar(t, attrs);
  const size_t base_rows = t.num_rows();
  for (const auto& row : split.tail) t.AppendRow(row);
  incremental.AppendRows(t, attrs, base_rows);
  CooccurrenceStats full = CooccurrenceStats::BuildColumnar(t, attrs);

  EXPECT_EQ(incremental.num_pair_entries(), full.num_pair_entries());
  for (AttrId a : attrs) {
    EXPECT_EQ(incremental.Domain(a), full.Domain(a)) << "attr " << a;
    for (ValueId v : full.Domain(a)) {
      EXPECT_EQ(incremental.Count(a, v), full.Count(a, v));
    }
  }
  for (AttrId a : attrs) {
    for (AttrId a_ctx : attrs) {
      if (a == a_ctx) continue;
      for (ValueId v_ctx : full.Domain(a_ctx)) {
        EXPECT_EQ(incremental.CooccurringValues(a, a_ctx, v_ctx),
                  full.CooccurringValues(a, a_ctx, v_ctx))
            << "a=" << a << " ctx=" << a_ctx << " v=" << v_ctx;
      }
    }
  }
}

}  // namespace
}  // namespace holoclean
