#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "holoclean/io/report_json.h"
#include "holoclean/util/json.h"

namespace holoclean {
namespace {

// ---------- JsonValue: serialization ----------

TEST(Json, DumpScalars) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Number(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(-3.0).Dump(), "-3");
  EXPECT_EQ(JsonValue::Number(0.5).Dump(), "0.5");
  EXPECT_EQ(JsonValue::String("hi").Dump(), "\"hi\"");
}

TEST(Json, DumpEscapesControlAndQuotes) {
  EXPECT_EQ(JsonValue::String("a\"b\\c\n\t").Dump(),
            "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(JsonValue::String(std::string("\x01", 1)).Dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Number(1));
  obj.Set("apple", JsonValue::Number(2));
  obj.Set("zebra", JsonValue::Number(3));  // replace keeps first position
  EXPECT_EQ(obj.Dump(), "{\"zebra\":3,\"apple\":2}");
}

TEST(Json, ArrayAndNesting) {
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(1));
  JsonValue inner = JsonValue::Object();
  inner.Set("k", JsonValue::Null());
  arr.Append(std::move(inner));
  EXPECT_EQ(arr.Dump(), "[1,{\"k\":null}]");
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
}

// ---------- JsonValue: parsing ----------

TEST(Json, ParseRoundTripsDump) {
  const std::string text =
      "{\"a\":[1,2.5,-3],\"b\":{\"c\":true,\"d\":null},\"e\":\"x\\ny\"}";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Dump(), text);
}

TEST(Json, ParseWhitespaceAndAccessors) {
  auto parsed = JsonValue::Parse(" { \"n\" : 7 , \"s\" : \"v\" , "
                                 "\"f\" : false , \"x\" : 1.25 } ");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& v = parsed.value();
  EXPECT_EQ(v.GetInt("n"), 7);
  EXPECT_EQ(v.GetString("s"), "v");
  EXPECT_FALSE(v.GetBool("f", true));
  EXPECT_DOUBLE_EQ(v.GetDouble("x"), 1.25);
  EXPECT_EQ(v.GetInt("missing", -9), -9);
  EXPECT_EQ(v.Find("nope"), nullptr);
}

TEST(Json, ParseUnicodeEscape) {
  auto parsed = JsonValue::Parse("\"\\u00e9\\u0041\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "\xC3\xA9"
                                       "A");
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("01a").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad \\q escape\"").ok());
}

TEST(Json, ParseRejectsHostileDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

// ---------- Report schema golden ----------

// A synthetic report with hand-picked values: the golden file pins the
// schema (field names, order, formatting), not pipeline behavior, so no
// field may depend on wall time or machine specifics.
Report MakeGoldenReport(Table* table) {
  Report report;
  Dictionary& dict = table->dict();
  Repair r1;
  r1.cell = {0, 1};
  r1.old_value = dict.Intern("Cicago");
  r1.new_value = dict.Intern("Chicago");
  r1.probability = 0.9375;
  Repair r2;
  r2.cell = {2, 0};
  r2.old_value = dict.Intern("60614");
  r2.new_value = dict.Intern("60616");
  r2.probability = 0.5;
  report.repairs = {r1, r2};
  report.posteriors.resize(3);

  RunStats& s = report.stats;
  s.detect_seconds = 0.25;
  s.compile_seconds = 0.5;
  s.learn_seconds = 1.0;
  s.infer_seconds = 0.25;
  s.stage_timings = {{"detect", 0.25, 1024, false},
                     {"compile", 0.5, 2048, false},
                     {"learn", 1.0, 4096, false},
                     {"infer", 0.25, 4096, true},
                     {"repair", 0.0, 4096, true}};
  s.num_violations = 10;
  s.num_noisy_cells = 4;
  s.num_query_vars = 3;
  s.num_evidence_vars = 9;
  s.num_candidates = 12;
  s.num_dc_factors = 2;
  s.num_grounded_factors = 20;
  s.detect_truncated = true;
  s.num_truncated_dcs = 1;
  return report;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ReportJson, GoldenSchemaIsPinned) {
  Schema schema({"Zip", "City"});
  Table table(schema, std::make_shared<Dictionary>());
  Report report = MakeGoldenReport(&table);

  std::string got = ReportJsonString(report, table);
  std::string want =
      ReadFile(std::string(HOLOCLEAN_TEST_DATA_DIR) + "/report_golden.json");
  // The golden file is stored with a trailing newline for editor hygiene.
  if (!want.empty() && want.back() == '\n') want.pop_back();
  EXPECT_EQ(got, want)
      << "report JSON schema drifted; if the change is intentional and "
         "additive, bump kReportJsonVersion and regenerate the golden file";
}

TEST(ReportJson, OutputParsesBackAndAgreesWithReport) {
  Schema schema({"Zip", "City"});
  Table table(schema, std::make_shared<Dictionary>());
  Report report = MakeGoldenReport(&table);

  auto parsed = JsonValue::Parse(ReportJsonString(report, table));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& j = parsed.value();
  EXPECT_EQ(j.GetInt("version"), kReportJsonVersion);
  ASSERT_NE(j.Find("repairs"), nullptr);
  const auto& repairs = j.Find("repairs")->items();
  ASSERT_EQ(repairs.size(), 2u);
  EXPECT_EQ(repairs[0].GetString("attr"), "City");
  EXPECT_EQ(repairs[0].GetString("old"), "Cicago");
  EXPECT_EQ(repairs[0].GetString("new"), "Chicago");
  EXPECT_DOUBLE_EQ(repairs[0].GetDouble("probability"), 0.9375);
  EXPECT_EQ(j.GetInt("num_posteriors"), 3);
  const JsonValue* stats = j.Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->GetInt("num_violations"), 10);
  EXPECT_TRUE(stats->GetBool("detect_truncated"));
  EXPECT_DOUBLE_EQ(stats->GetDouble("total_seconds"), 2.0);
  ASSERT_NE(stats->Find("stage_timings"), nullptr);
  EXPECT_EQ(stats->Find("stage_timings")->items().size(), 5u);
  EXPECT_TRUE(stats->Find("stage_timings")->items()[4].GetBool("cached"));
}

}  // namespace
}  // namespace holoclean
