#include <gtest/gtest.h>

#include "holoclean/constraints/parser.h"
#include "holoclean/ddlog/program.h"

namespace holoclean {
namespace {

Schema TestSchema() { return Schema({"Zip", "City", "State"}); }

DenialConstraint ZipCityFd() {
  auto dc = ParseDenialConstraint(
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)", TestSchema());
  EXPECT_TRUE(dc.ok());
  return dc.value();
}

TEST(HeadSlots, EnumeratesDistinctCellSlots) {
  auto slots = EnumerateHeadSlots(ZipCityFd());
  // Zip and City for each of the two tuple roles.
  ASSERT_EQ(slots.size(), 4u);
  int role0 = 0;
  for (const auto& s : slots) {
    if (s.role == 0) ++role0;
  }
  EXPECT_EQ(role0, 2);
}

TEST(HeadSlots, ConstantPredicatesContributeOneSlot) {
  auto dc = ParseDenialConstraint("t1&EQ(t1.State,\"IL\")", TestSchema());
  ASSERT_TRUE(dc.ok());
  auto slots = EnumerateHeadSlots(dc.value());
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].role, 0);
  EXPECT_EQ(slots[0].attr, TestSchema().IndexOf("State"));
}

TEST(Rules, RandomVariableRule) {
  InferenceRule rule;
  rule.kind = RuleKind::kRandomVariable;
  EXPECT_EQ(rule.ToDDlog(TestSchema(), {}),
            "Value?(t,a,d) :- Domain(t,a,d)");
}

TEST(Rules, FeatureRuleShowsParameterizedWeight) {
  InferenceRule rule;
  rule.kind = RuleKind::kFeature;
  EXPECT_NE(rule.ToDDlog(TestSchema(), {}).find("w(d,f)"),
            std::string::npos);
}

TEST(Rules, MinimalityRuleShowsFixedWeight) {
  InferenceRule rule;
  rule.kind = RuleKind::kMinimalityPrior;
  rule.fixed_weight = 2.5;
  std::string text = rule.ToDDlog(TestSchema(), {});
  EXPECT_NE(text.find("InitValue"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(Rules, DcFactorRuleListsAllValuePredicates) {
  std::vector<DenialConstraint> dcs = {ZipCityFd()};
  InferenceRule rule;
  rule.kind = RuleKind::kDcFactor;
  rule.dc_index = 0;
  rule.fixed_weight = 4;
  std::string text = rule.ToDDlog(TestSchema(), dcs);
  EXPECT_NE(text.find("!(Value?(t1,Zip"), std::string::npos);
  EXPECT_NE(text.find("Tuple(t1),Tuple(t2)"), std::string::npos);
  // Four Value? predicates joined by conjunction.
  size_t count = 0;
  for (size_t pos = 0; (pos = text.find("Value?", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Rules, RelaxedRuleHasSingleValueHead) {
  std::vector<DenialConstraint> dcs = {ZipCityFd()};
  InferenceRule rule;
  rule.kind = RuleKind::kDcRelaxedFeature;
  rule.dc_index = 0;
  rule.head = {0, TestSchema().IndexOf("City")};
  std::string text = rule.ToDDlog(TestSchema(), dcs);
  // Exactly one Value? (the head); the other slots become InitValue.
  size_t value_count = 0;
  for (size_t pos = 0;
       (pos = text.find("Value?", pos)) != std::string::npos; ++pos) {
    ++value_count;
  }
  EXPECT_EQ(value_count, 1u);
  EXPECT_EQ(text.rfind("!Value?(t1,City", 0), 0u);  // Starts with the head.
  size_t init_count = 0;
  for (size_t pos = 0;
       (pos = text.find("InitValue", pos)) != std::string::npos; ++pos) {
    ++init_count;
  }
  EXPECT_EQ(init_count, 3u);
}

TEST(Program, PrintsOneRulePerLine) {
  std::vector<DenialConstraint> dcs = {ZipCityFd()};
  Program program;
  InferenceRule random_var;
  random_var.kind = RuleKind::kRandomVariable;
  program.rules.push_back(random_var);
  InferenceRule feature;
  feature.kind = RuleKind::kFeature;
  program.rules.push_back(feature);
  InferenceRule factor;
  factor.kind = RuleKind::kDcFactor;
  factor.dc_index = 0;
  program.rules.push_back(factor);
  std::string text = program.ToDDlog(TestSchema(), dcs);
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace holoclean
