#ifndef HOLOCLEAN_TESTS_SESSION_HELPERS_H_
#define HOLOCLEAN_TESTS_SESSION_HELPERS_H_

#include <string>
#include <vector>

#include "holoclean/core/engine.h"

namespace holoclean {
namespace test_helpers {

/// Thin wrappers over the standalone session entry points with the
/// borrowed-pointer calling convention the tests use throughout (fixture
/// members always outlive the session under test).

inline Result<Session> OpenSessionOver(
    const HoloCleanConfig& config, Dataset* dataset,
    const std::vector<DenialConstraint>& dcs,
    const ExtDictCollection* dicts = nullptr,
    const std::vector<MatchingDependency>* mds = nullptr,
    const DetectorSuite* extra_detectors = nullptr) {
  return OpenStandaloneSession(
      CleaningInputs::Borrowed(dataset, &dcs, dicts, mds, extra_detectors),
      {config});
}

inline Result<Session> RestoreSessionOver(
    const HoloCleanConfig& config, const std::string& snapshot_path,
    Dataset* dataset, const std::vector<DenialConstraint>& dcs,
    const ExtDictCollection* dicts = nullptr,
    const std::vector<MatchingDependency>* mds = nullptr,
    const DetectorSuite* extra_detectors = nullptr,
    const SnapshotLoadOptions& load_options = {}) {
  SessionOptions options;
  options.config = config;
  options.snapshot_path = snapshot_path;
  options.load_options = load_options;
  return OpenStandaloneSession(
      CleaningInputs::Borrowed(dataset, &dcs, dicts, mds, extra_detectors),
      options);
}

inline Result<Report> RunOnce(
    const HoloCleanConfig& config, Dataset* dataset,
    const std::vector<DenialConstraint>& dcs,
    const ExtDictCollection* dicts = nullptr,
    const std::vector<MatchingDependency>* mds = nullptr,
    const DetectorSuite* extra_detectors = nullptr) {
  return CleanOnce(
      CleaningInputs::Borrowed(dataset, &dcs, dicts, mds, extra_detectors),
      {config});
}

}  // namespace test_helpers
}  // namespace holoclean

#endif  // HOLOCLEAN_TESTS_SESSION_HELPERS_H_
