#include <gtest/gtest.h>

#include <cmath>

#include "holoclean/stats/cooccurrence.h"
#include "holoclean/stats/frequency.h"
#include "holoclean/stats/numeric.h"
#include "holoclean/stats/source_reliability.h"
#include "holoclean/util/rng.h"

namespace holoclean {
namespace {

Table CityZipTable() {
  Table t(Schema({"City", "Zip"}), std::make_shared<Dictionary>());
  t.AppendRow({"Chicago", "60608"});
  t.AppendRow({"Chicago", "60608"});
  t.AppendRow({"Chicago", "60609"});
  t.AppendRow({"Evanston", "60201"});
  t.AppendRow({"", "60201"});  // NULL city.
  return t;
}

std::vector<AttrId> Attrs(const Table& t) {
  std::vector<AttrId> out;
  for (size_t a = 0; a < t.schema().num_attrs(); ++a) {
    out.push_back(static_cast<AttrId>(a));
  }
  return out;
}

// ---------- FrequencyStats ----------

TEST(FrequencyStats, CountsAndProbabilities) {
  Table t = CityZipTable();
  FrequencyStats freq = FrequencyStats::Build(t);
  ValueId chicago = t.dict().Lookup("Chicago");
  EXPECT_EQ(freq.Count(0, chicago), 3);
  EXPECT_DOUBLE_EQ(freq.Probability(0, chicago), 3.0 / 5.0);
  EXPECT_EQ(freq.Count(0, t.dict().Lookup("Evanston")), 1);
  EXPECT_EQ(freq.Mode(0), chicago);
}

TEST(FrequencyStats, SortedCountsDescending) {
  Table t = CityZipTable();
  FrequencyStats freq = FrequencyStats::Build(t);
  auto sorted = freq.SortedCounts(1);
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_GE(sorted[i].second, sorted[i + 1].second);
  }
}

// ---------- CooccurrenceStats ----------

TEST(Cooccurrence, PairCountsSkipNulls) {
  Table t = CityZipTable();
  CooccurrenceStats cooc = CooccurrenceStats::Build(t, Attrs(t));
  ValueId chicago = t.dict().Lookup("Chicago");
  ValueId z608 = t.dict().Lookup("60608");
  ValueId z201 = t.dict().Lookup("60201");
  EXPECT_EQ(cooc.PairCount(0, chicago, 1, z608), 2);
  // The NULL-city row does not contribute a (city, zip) pair.
  EXPECT_EQ(cooc.PairCount(1, z201, 0, Dictionary::kNull), 0);
  // Count() of the context side also skips nothing else.
  EXPECT_EQ(cooc.Count(1, z201), 2);
}

TEST(Cooccurrence, CondProbDefinition) {
  Table t = CityZipTable();
  CooccurrenceStats cooc = CooccurrenceStats::Build(t, Attrs(t));
  ValueId chicago = t.dict().Lookup("Chicago");
  ValueId z608 = t.dict().Lookup("60608");
  // Pr[City=Chicago | Zip=60608] = 2/2.
  EXPECT_DOUBLE_EQ(cooc.CondProb(0, chicago, 1, z608), 1.0);
  // Pr[Zip=60608 | City=Chicago] = 2/3.
  EXPECT_DOUBLE_EQ(cooc.CondProb(1, z608, 0, chicago), 2.0 / 3.0);
  // Unseen context yields probability 0.
  EXPECT_DOUBLE_EQ(cooc.CondProb(0, chicago, 1, 9999), 0.0);
}

TEST(Cooccurrence, CooccurringValuesMatchesPairCounts) {
  Table t = CityZipTable();
  CooccurrenceStats cooc = CooccurrenceStats::Build(t, Attrs(t));
  ValueId chicago = t.dict().Lookup("Chicago");
  auto values = cooc.CooccurringValues(1, 0, chicago);
  ASSERT_EQ(values.size(), 2u);
  int total = 0;
  for (const auto& [v, n] : values) {
    EXPECT_EQ(n, cooc.PairCount(1, v, 0, chicago));
    total += n;
  }
  EXPECT_EQ(total, 3);
}

TEST(Cooccurrence, ConditionalSumsToOneProperty) {
  // Property: for any context value, Σ_v Pr[v | ctx] == 1 over non-null
  // rows of the target attribute.
  Rng rng(99);
  Table t(Schema({"A", "B"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({"a" + std::to_string(rng.Below(5)),
                 "b" + std::to_string(rng.Below(3))});
  }
  CooccurrenceStats cooc = CooccurrenceStats::Build(t, {0, 1});
  for (ValueId b : cooc.Domain(1)) {
    double sum = 0.0;
    for (ValueId a : cooc.Domain(0)) sum += cooc.CondProb(0, a, 1, b);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Cooccurrence, DomainIsSortedDistinct) {
  Table t = CityZipTable();
  CooccurrenceStats cooc = CooccurrenceStats::Build(t, Attrs(t));
  const auto& domain = cooc.Domain(0);
  EXPECT_EQ(domain.size(), 2u);
  EXPECT_TRUE(std::is_sorted(domain.begin(), domain.end()));
}

// ---------- SourceReliability ----------

Table FusionTable(int num_entities, double good_acc, double bad_acc,
                  uint64_t seed) {
  Rng rng(seed);
  Table t(Schema({"Key", "Value", "Source"}), std::make_shared<Dictionary>());
  for (int e = 0; e < num_entities; ++e) {
    std::string key = "k" + std::to_string(e);
    std::string truth = "v" + std::to_string(e);
    std::string wrong = "w" + std::to_string(e);
    for (int s = 0; s < 6; ++s) {
      double acc = s < 3 ? good_acc : bad_acc;
      t.AppendRow({key, rng.Chance(acc) ? truth : wrong,
                   "src" + std::to_string(s)});
    }
  }
  return t;
}

TEST(SourceReliability, SeparatesGoodFromBadSources) {
  Table t = FusionTable(200, 0.95, 0.3, 42);
  SourceReliability r = SourceReliability::Estimate(t, 0, 2);
  for (int s = 0; s < 3; ++s) {
    ValueId good = t.dict().Lookup("src" + std::to_string(s));
    ValueId bad = t.dict().Lookup("src" + std::to_string(s + 3));
    EXPECT_GT(r.Get(good), 0.8) << "good source " << s;
    EXPECT_LT(r.Get(bad), 0.55) << "bad source " << s;
  }
}

TEST(SourceReliability, UnknownSourceIsUninformative) {
  Table t = FusionTable(10, 0.9, 0.4, 1);
  SourceReliability r = SourceReliability::Estimate(t, 0, 2);
  EXPECT_DOUBLE_EQ(r.Get(99999), 0.5);
}

TEST(SourceReliability, AllReturnsSorted) {
  Table t = FusionTable(20, 0.9, 0.4, 2);
  SourceReliability r = SourceReliability::Estimate(t, 0, 2);
  auto all = r.All();
  EXPECT_EQ(all.size(), 6u);
  for (size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_LT(all[i].first, all[i + 1].first);
  }
}


// ---------- NumericProfile ----------

TEST(NumericProfile, BasicStatistics) {
  Table t(Schema({"Score"}), std::make_shared<Dictionary>());
  for (const char* v : {"1", "2", "3", "4", "5"}) t.AppendRow({v});
  NumericProfile p = ProfileNumeric(t, 0);
  EXPECT_EQ(p.numeric_count, 5u);
  EXPECT_TRUE(p.IsNumericAttribute());
  EXPECT_DOUBLE_EQ(p.mean, 3.0);
  EXPECT_DOUBLE_EQ(p.median, 3.0);
  EXPECT_NEAR(p.stddev, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(p.mad, 1.4826, 1e-9);
}

TEST(NumericProfile, MixedColumnIsNotNumeric) {
  Table t(Schema({"A"}), std::make_shared<Dictionary>());
  t.AppendRow({"1"});
  t.AppendRow({"hello"});
  t.AppendRow({"world"});
  NumericProfile p = ProfileNumeric(t, 0);
  EXPECT_FALSE(p.IsNumericAttribute());
  EXPECT_EQ(p.non_numeric_count, 2u);
}

TEST(NumericProfile, RobustZIdentifiesOutliers) {
  Table t(Schema({"A"}), std::make_shared<Dictionary>());
  for (int i = 0; i < 50; ++i) t.AppendRow({std::to_string(100 + i % 5)});
  NumericProfile p = ProfileNumeric(t, 0);
  EXPECT_LT(p.RobustZ(103.0), 3.0);
  EXPECT_GT(p.RobustZ(9999.0), 5.0);
}

TEST(NumericProfile, EmptyAndNullColumns) {
  Table t(Schema({"A"}), std::make_shared<Dictionary>());
  t.AppendRow({""});
  NumericProfile p = ProfileNumeric(t, 0);
  EXPECT_EQ(p.numeric_count, 0u);
  EXPECT_FALSE(p.IsNumericAttribute());
  EXPECT_DOUBLE_EQ(p.RobustZ(1.0), 0.0);
}

}  // namespace
}  // namespace holoclean
