#include <gtest/gtest.h>

#include "holoclean/data/hospital.h"
#include "holoclean/extdata/matcher.h"
#include "holoclean/extdata/md_parser.h"

namespace holoclean {
namespace {

struct Fixture {
  Fixture() : data(Schema({"City", "State", "Zip"}),
                   std::make_shared<Dictionary>()) {
    data.AppendRow({"Chicago", "IL", "60608"});
    data.AppendRow({"Cicago", "IL", "60608"});   // Misspelled city.
    data.AppendRow({"Evanston", "IL", "60201"});
    data.AppendRow({"Unknown", "ZZ", "99999"});  // Not in the listing.

    Table listing(Schema({"Ext_Zip", "Ext_City", "Ext_State"}),
                  std::make_shared<Dictionary>());
    listing.AppendRow({"60608", "Chicago", "IL"});
    listing.AppendRow({"60201", "Evanston", "IL"});
    dict_id = dicts.Add("zips", std::move(listing));
  }

  Table data;
  ExtDictCollection dicts;
  int dict_id;
};

TEST(Matcher, ExactClauseLookup) {
  Fixture f;
  MatchingDependency md{"zip->city", f.dict_id, {{"Zip", "Ext_Zip"}},
                        "City", "Ext_City"};
  Matcher matcher(&f.data, &f.dicts);
  auto matches = matcher.Match(md);
  ASSERT_TRUE(matches.ok());
  // Tuples 0, 1, 2 match on zip; tuple 3 does not.
  ASSERT_EQ(matches.value().size(), 3u);
  for (const auto& m : matches.value()) {
    EXPECT_EQ(m.cell.attr, f.data.schema().IndexOf("City"));
    EXPECT_EQ(m.dict_id, f.dict_id);
  }
  EXPECT_EQ(matches.value()[1].cell.tid, 1);
  EXPECT_EQ(matches.value()[1].value, "Chicago");
}

TEST(Matcher, ApproximateClause) {
  Fixture f;
  MatchingDependency md{"city~,state->zip",
                        f.dict_id,
                        {{"State", "Ext_State"},
                         {"City", "Ext_City", /*approximate=*/true, 0.8}},
                        "Zip",
                        "Ext_Zip"};
  Matcher matcher(&f.data, &f.dicts);
  auto matches = matcher.Match(md);
  ASSERT_TRUE(matches.ok());
  // "Cicago" ≈ "Chicago" (0.857) matches; tuple 3's city matches nothing.
  bool found_misspelled = false;
  for (const auto& m : matches.value()) {
    if (m.cell.tid == 1) {
      found_misspelled = true;
      EXPECT_EQ(m.value, "60608");
    }
    EXPECT_NE(m.cell.tid, 3);
  }
  EXPECT_TRUE(found_misspelled);
}

TEST(Matcher, UnknownAttributesFail) {
  Fixture f;
  Matcher matcher(&f.data, &f.dicts);
  MatchingDependency bad_data{"x", f.dict_id, {{"Nope", "Ext_Zip"}}, "City",
                              "Ext_City"};
  EXPECT_FALSE(matcher.Match(bad_data).ok());
  MatchingDependency bad_ext{"x", f.dict_id, {{"Zip", "Ext_Nope"}}, "City",
                             "Ext_City"};
  EXPECT_FALSE(matcher.Match(bad_ext).ok());
  MatchingDependency bad_dict{"x", 42, {{"Zip", "Ext_Zip"}}, "City",
                              "Ext_City"};
  EXPECT_FALSE(matcher.Match(bad_dict).ok());
}

TEST(Matcher, MatchAllUnionsDependencies) {
  Fixture f;
  std::vector<MatchingDependency> mds = {
      {"zip->city", f.dict_id, {{"Zip", "Ext_Zip"}}, "City", "Ext_City"},
      {"zip->state", f.dict_id, {{"Zip", "Ext_Zip"}}, "State", "Ext_State"},
  };
  Matcher matcher(&f.data, &f.dicts);
  auto matches = matcher.MatchAll(mds);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 6u);
}

TEST(Matcher, NormalizationIgnoresCaseAndSpacing) {
  Table data(Schema({"Addr", "Zip"}), std::make_shared<Dictionary>());
  data.AppendRow({"3465  s MORGAN st", ""});
  ExtDictCollection dicts;
  Table listing(Schema({"Ext_Addr", "Ext_Zip"}),
                std::make_shared<Dictionary>());
  listing.AppendRow({"3465 S Morgan ST", "60608"});
  int k = dicts.Add("addr", std::move(listing));
  Matcher matcher(&data, &dicts);
  auto matches = matcher.Match(
      {"addr->zip", k, {{"Addr", "Ext_Addr"}}, "Zip", "Ext_Zip"});
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 1u);
  EXPECT_EQ(matches.value()[0].value, "60608");
}

TEST(Matcher, PaddedZipFormatMismatchYieldsNoMatches) {
  // The Physicians scenario: dictionary zips are zero-padded.
  Table data(Schema({"Zip", "City"}), std::make_shared<Dictionary>());
  data.AppendRow({"60608", "Chicago"});
  ExtDictCollection dicts;
  Table listing(Schema({"Ext_Zip", "Ext_City"}),
                std::make_shared<Dictionary>());
  listing.AppendRow({"060608", "Chicago"});
  int k = dicts.Add("padded", std::move(listing));
  Matcher matcher(&data, &dicts);
  auto matches = matcher.Match(
      {"zip->city", k, {{"Zip", "Ext_Zip"}}, "City", "Ext_City"});
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches.value().empty());
}

TEST(ExtDictCollection, AddAndGet) {
  ExtDictCollection dicts;
  EXPECT_TRUE(dicts.empty());
  Table t(Schema({"A"}), std::make_shared<Dictionary>());
  int id = dicts.Add("first", std::move(t));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(dicts.Get(0).name(), "first");
  EXPECT_EQ(dicts.size(), 1u);
}


TEST(MdParser, ParsesSimpleDependency) {
  auto md = ParseMatchingDependency("m1: dict=0 Zip=Ext_Zip -> City=Ext_City");
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md.value().name, "m1");
  EXPECT_EQ(md.value().dict_id, 0);
  ASSERT_EQ(md.value().conditions.size(), 1u);
  EXPECT_EQ(md.value().conditions[0].data_attr, "Zip");
  EXPECT_EQ(md.value().conditions[0].ext_attr, "Ext_Zip");
  EXPECT_FALSE(md.value().conditions[0].approximate);
  EXPECT_EQ(md.value().target_data_attr, "City");
  EXPECT_EQ(md.value().target_ext_attr, "Ext_City");
}

TEST(MdParser, ParsesApproximateClausesAndThresholds) {
  auto md = ParseMatchingDependency(
      "City=Ext_City & Address~Ext_Address@0.9 -> Zip=Ext_Zip");
  ASSERT_TRUE(md.ok());
  ASSERT_EQ(md.value().conditions.size(), 2u);
  EXPECT_FALSE(md.value().conditions[0].approximate);
  EXPECT_TRUE(md.value().conditions[1].approximate);
  EXPECT_DOUBLE_EQ(md.value().conditions[1].sim_threshold, 0.9);
  EXPECT_EQ(md.value().dict_id, 0);  // Default dictionary.
  EXPECT_EQ(md.value().name, "City->Zip");  // Auto-generated name.
}

TEST(MdParser, DefaultSimilarityThreshold) {
  auto md = ParseMatchingDependency("City~Ext_City -> Zip=Ext_Zip");
  ASSERT_TRUE(md.ok());
  EXPECT_DOUBLE_EQ(md.value().conditions[0].sim_threshold, 0.85);
}

TEST(MdParser, RejectsMalformedInput) {
  EXPECT_FALSE(ParseMatchingDependency("").ok());
  EXPECT_FALSE(ParseMatchingDependency("Zip=Ext_Zip").ok());        // No ->.
  EXPECT_FALSE(ParseMatchingDependency("-> City=Ext_City").ok());   // Empty.
  EXPECT_FALSE(ParseMatchingDependency("Zip -> City=Ext_City").ok());
  EXPECT_FALSE(
      ParseMatchingDependency("Zip=Ext_Zip -> City~Ext_City").ok());
  EXPECT_FALSE(
      ParseMatchingDependency("A~B@1.5 -> City=Ext_City").ok());
}

TEST(MdParser, MultiLineWithComments) {
  auto mds = ParseMatchingDependencies(
      "# the zip listing\n"
      "m1: Zip=Ext_Zip -> City=Ext_City\n"
      "\n"
      "m2: Zip=Ext_Zip -> State=Ext_State\n");
  ASSERT_TRUE(mds.ok());
  EXPECT_EQ(mds.value().size(), 2u);
}

TEST(MdParser, ParsedDependencyDrivesMatcher) {
  Fixture f;
  auto md = ParseMatchingDependency("zip->city: Zip=Ext_Zip -> City=Ext_City");
  ASSERT_TRUE(md.ok());
  Matcher matcher(&f.data, &f.dicts);
  auto matches = matcher.Match(md.value());
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 3u);
}

}  // namespace
}  // namespace holoclean
