// Differential tests for the columnar scan paths: every artifact the
// pipeline produces with `config.columnar = true` (the default) must be
// bit-identical to the row-at-a-time reference path, for any seed, dataset,
// and thread count. Plus the ColumnStore invariants the scans rely on and
// the snapshot back-compat contract for the kColumnStore section.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/io/binary_io.h"
#include "holoclean/io/session_snapshot.h"
#include "holoclean/stats/cooccurrence.h"
#include "holoclean/util/hash.h"
#include "holoclean/util/rng.h"

#include "session_helpers.h"

namespace holoclean {
namespace {

// ---------- Full-pipeline differential ----------

/// One completed run plus the artifacts the differential compares. The
/// session keeps the context alive.
struct PipelineRun {
  std::unique_ptr<GeneratedData> data;
  std::unique_ptr<Session> session;
  Report report;
};

PipelineRun RunFood(size_t rows, uint64_t seed, bool columnar,
                    size_t threads) {
  PipelineRun run;
  run.data = std::make_unique<GeneratedData>(MakeFood({rows, 0.06, seed}));
  HoloCleanConfig config;
  config.tau = 0.5;
  config.columnar = columnar;
  config.num_threads = threads;
  auto opened = test_helpers::OpenSessionOver(config, &run.data->dataset,
                                              run.data->dcs);
  EXPECT_TRUE(opened.ok());
  run.session = std::make_unique<Session>(std::move(opened).value());
  auto report = run.session->Run();
  EXPECT_TRUE(report.ok());
  run.report = std::move(report).value();
  return run;
}

PipelineRun RunHospital(size_t rows, uint64_t seed, bool columnar,
                        size_t threads) {
  PipelineRun run;
  HospitalOptions options;
  options.num_rows = rows;
  options.seed = seed;
  run.data = std::make_unique<GeneratedData>(MakeHospital(options));
  HoloCleanConfig config;
  config.columnar = columnar;
  config.num_threads = threads;
  auto opened = test_helpers::OpenSessionOver(config, &run.data->dataset,
                                              run.data->dcs);
  EXPECT_TRUE(opened.ok());
  run.session = std::make_unique<Session>(std::move(opened).value());
  auto report = run.session->Run();
  EXPECT_TRUE(report.ok());
  run.report = std::move(report).value();
  return run;
}

void ExpectViolationsIdentical(const std::vector<Violation>& a,
                               const std::vector<Violation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dc_index, b[i].dc_index) << "violation " << i;
    EXPECT_EQ(a[i].t1, b[i].t1) << "violation " << i;
    EXPECT_EQ(a[i].t2, b[i].t2) << "violation " << i;
    ASSERT_EQ(a[i].cells.size(), b[i].cells.size()) << "violation " << i;
    for (size_t c = 0; c < a[i].cells.size(); ++c) {
      EXPECT_EQ(a[i].cells[c], b[i].cells[c])
          << "violation " << i << " cell " << c;
    }
  }
}

void ExpectGraphsIdentical(const FactorGraph& a, const FactorGraph& b) {
  ASSERT_EQ(a.num_variables(), b.num_variables());
  for (size_t v = 0; v < a.num_variables(); ++v) {
    const Variable& x = a.variables()[v];
    const Variable& y = b.variables()[v];
    EXPECT_EQ(x.cell, y.cell) << "var " << v;
    EXPECT_EQ(x.domain, y.domain) << "var " << v;
    EXPECT_EQ(x.init_index, y.init_index) << "var " << v;
    EXPECT_EQ(x.is_evidence, y.is_evidence) << "var " << v;
    EXPECT_EQ(x.prior_bias, y.prior_bias) << "var " << v;
    EXPECT_EQ(x.feat_begin, y.feat_begin) << "var " << v;
    ASSERT_EQ(x.features.size(), y.features.size()) << "var " << v;
    for (size_t f = 0; f < x.features.size(); ++f) {
      EXPECT_EQ(x.features[f].weight_key, y.features[f].weight_key)
          << "var " << v << " feature " << f;
      EXPECT_EQ(x.features[f].activation, y.features[f].activation)
          << "var " << v << " feature " << f;
    }
  }
  ASSERT_EQ(a.dc_factors().size(), b.dc_factors().size());
  for (size_t f = 0; f < a.dc_factors().size(); ++f) {
    const DcFactor& x = a.dc_factors()[f];
    const DcFactor& y = b.dc_factors()[f];
    EXPECT_EQ(x.dc_index, y.dc_index) << "factor " << f;
    EXPECT_EQ(x.t1, y.t1) << "factor " << f;
    EXPECT_EQ(x.t2, y.t2) << "factor " << f;
    EXPECT_EQ(x.weight, y.weight) << "factor " << f;
    EXPECT_EQ(x.var_ids, y.var_ids) << "factor " << f;
  }
}

void ExpectRunsIdentical(const PipelineRun& col, const PipelineRun& row) {
  const PipelineContext& a = col.session->context();
  const PipelineContext& b = row.session->context();
  ExpectViolationsIdentical(a.violations, b.violations);
  // Noisy set: same cells in the same first-seen order.
  ASSERT_EQ(a.noisy.size(), b.noisy.size());
  for (size_t i = 0; i < a.noisy.cells().size(); ++i) {
    EXPECT_EQ(a.noisy.cells()[i], b.noisy.cells()[i]) << "noisy cell " << i;
  }
  // Pruned candidate domains (unordered_map equality is order-free).
  EXPECT_TRUE(a.domains.candidates == b.domains.candidates);
  ExpectGraphsIdentical(a.graph, b.graph);
  // Repairs and posteriors, bit for bit.
  ASSERT_EQ(col.report.repairs.size(), row.report.repairs.size());
  for (size_t i = 0; i < col.report.repairs.size(); ++i) {
    const Repair& x = col.report.repairs[i];
    const Repair& y = row.report.repairs[i];
    EXPECT_EQ(x.cell, y.cell) << "repair " << i;
    EXPECT_EQ(x.old_value, y.old_value) << "repair " << i;
    EXPECT_EQ(x.new_value, y.new_value) << "repair " << i;
    EXPECT_EQ(x.probability, y.probability) << "repair " << i;
  }
  ASSERT_EQ(col.report.posteriors.size(), row.report.posteriors.size());
  for (size_t i = 0; i < col.report.posteriors.size(); ++i) {
    const CellPosterior& x = col.report.posteriors[i];
    const CellPosterior& y = row.report.posteriors[i];
    EXPECT_EQ(x.cell, y.cell) << "posterior " << i;
    EXPECT_EQ(x.old_value, y.old_value) << "posterior " << i;
    EXPECT_EQ(x.map_value, y.map_value) << "posterior " << i;
    EXPECT_EQ(x.map_prob, y.map_prob) << "posterior " << i;
  }
}

TEST(ColumnarPipeline, BitIdenticalToRowPathAcrossSeeds) {
  for (uint64_t seed : {11u, 12u}) {
    PipelineRun col = RunFood(400, seed, /*columnar=*/true, /*threads=*/1);
    PipelineRun row = RunFood(400, seed, /*columnar=*/false, /*threads=*/1);
    ExpectRunsIdentical(col, row);
  }
}

TEST(ColumnarPipeline, BitIdenticalAcrossThreadCounts) {
  // The columnar path parallelizes per-DC detection, co-occurrence
  // counting, and domain pruning across the pool; the output must not
  // depend on the pool size (the row reference runs single-threaded).
  PipelineRun row = RunFood(400, 21, /*columnar=*/false, /*threads=*/1);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    PipelineRun col = RunFood(400, 21, /*columnar=*/true, threads);
    ExpectRunsIdentical(col, row);
  }
}

TEST(ColumnarPipeline, BitIdenticalOnHospitalProfile) {
  // A second data profile: few distinct values per column with heavy
  // duplication — the opposite dictionary shape from Food.
  PipelineRun col = RunHospital(150, 101, /*columnar=*/true, /*threads=*/4);
  PipelineRun row = RunHospital(150, 101, /*columnar=*/false, /*threads=*/1);
  ExpectRunsIdentical(col, row);
}

// ---------- Co-occurrence differential ----------

Table RandomTable(size_t rows, size_t attrs, uint64_t seed,
                  size_t distinct_per_attr) {
  std::vector<std::string> names;
  for (size_t a = 0; a < attrs; ++a) names.push_back("A" + std::to_string(a));
  Table t(Schema(names), std::make_shared<Dictionary>());
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t a = 0; a < attrs; ++a) {
      // ~10% NULLs so the skip-null rule is exercised.
      if (rng.Next() % 10 == 0) {
        row.push_back("");
      } else {
        row.push_back("v" + std::to_string(rng.Next() % distinct_per_attr));
      }
    }
    t.AppendRow(row);
  }
  return t;
}

void ExpectCoocIdentical(const Table& t, const std::vector<AttrId>& attrs,
                         const CooccurrenceStats& a,
                         const CooccurrenceStats& b) {
  EXPECT_EQ(a.num_pair_entries(), b.num_pair_entries());
  for (AttrId x : attrs) {
    ASSERT_EQ(a.Domain(x), b.Domain(x)) << "attr " << x;
    for (ValueId v : a.Domain(x)) {
      EXPECT_EQ(a.Count(x, v), b.Count(x, v));
    }
    for (AttrId y : attrs) {
      if (x == y) continue;
      for (ValueId ctx : a.Domain(y)) {
        ASSERT_EQ(a.CooccurringValues(x, y, ctx),
                  b.CooccurringValues(x, y, ctx))
            << "attrs (" << x << "," << y << ") ctx " << ctx;
        for (const auto& [v, count] : a.CooccurringValues(x, y, ctx)) {
          EXPECT_EQ(a.PairCount(x, v, y, ctx), count);
          EXPECT_EQ(b.PairCount(x, v, y, ctx), count);
          EXPECT_EQ(a.CondProb(x, v, y, ctx), b.CondProb(x, v, y, ctx));
        }
      }
    }
  }
}

TEST(ColumnarCooccurrence, BuildColumnarMatchesBuildOnRandomTables) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Table t = RandomTable(300, 4, seed, 12);
    std::vector<AttrId> attrs = {0, 1, 2, 3};
    CooccurrenceStats row = CooccurrenceStats::Build(t, attrs);
    CooccurrenceStats col = CooccurrenceStats::BuildColumnar(t, attrs);
    ExpectCoocIdentical(t, attrs, col, row);
    ThreadPool pool(4);
    CooccurrenceStats par = CooccurrenceStats::BuildColumnar(t, attrs, &pool);
    ExpectCoocIdentical(t, attrs, par, row);
  }
}

TEST(ColumnarCooccurrence, MatchesAfterCellMutations) {
  // Set() rewrites codes, counts, and the decoded mirror together; the
  // counting pass must see the post-mutation state.
  Table t = RandomTable(120, 3, 9, 8);
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    TupleId tid = static_cast<TupleId>(rng.Next() % t.num_rows());
    AttrId attr = static_cast<AttrId>(rng.Next() % 3);
    t.SetString(tid, attr, "w" + std::to_string(rng.Next() % 5));
  }
  std::vector<AttrId> attrs = {0, 1, 2};
  ExpectCoocIdentical(t, attrs, CooccurrenceStats::BuildColumnar(t, attrs),
                      CooccurrenceStats::Build(t, attrs));
}

// ---------- Detection fallback / truncation differential ----------

TEST(ColumnarDetect, TruncationDifferentialAndFlag) {
  // A constraint with no equality predicate falls back to the capped
  // brute-force pair scan. Both paths must truncate at the same point,
  // report the same truncated set, and emit identical violations.
  Table t(Schema({"Name", "Score"}), std::make_shared<Dictionary>());
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    t.AppendRow({"n" + std::to_string(i),
                 std::to_string(rng.Next() % 40)});
  }
  auto dcs = ParseDenialConstraints(
      "t1&t2&GT(t1.Score,t2.Score)\n"
      "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Score,t2.Score)\n",
      t.schema());
  ASSERT_TRUE(dcs.ok());

  ViolationDetector::Options options;
  options.max_fallback_pairs = 500;  // 60 rows -> 1770 pairs: truncates.
  options.columnar = true;
  DetectResult col = ViolationDetector(&t, &dcs.value(), options).DetectAll();
  options.columnar = false;
  DetectResult row = ViolationDetector(&t, &dcs.value(), options).DetectAll();

  ASSERT_EQ(col.truncated_dcs, std::vector<int>{0});
  ASSERT_EQ(row.truncated_dcs, std::vector<int>{0});
  ExpectViolationsIdentical(col.violations, row.violations);

  // A budget that covers the full scan reports no truncation.
  options.max_fallback_pairs = 4'000'000;
  options.columnar = true;
  DetectResult full = ViolationDetector(&t, &dcs.value(), options).DetectAll();
  EXPECT_TRUE(full.truncated_dcs.empty());
  EXPECT_GT(full.violations.size(), col.violations.size());
}

TEST(ColumnarDetect, RunStatsDefaultUntruncated) {
  // The session surfaces truncation in RunStats; the default budget is
  // far above these sizes, so the flag must stay clear.
  PipelineRun run = RunFood(200, 4, /*columnar=*/true, /*threads=*/1);
  EXPECT_FALSE(run.report.stats.detect_truncated);
  EXPECT_EQ(run.report.stats.num_truncated_dcs, 0u);
}

// ---------- ColumnStore invariants ----------

TEST(ColumnStore, FromCsvDictionariesSortedAndCountsExact) {
  CsvDocument doc;
  doc.header = {"City", "Zip"};
  doc.rows = {{"Chicago", "60608"}, {"Evanston", "60201"},
              {"Chicago", "60608"}, {"", "60609"},
              {"Aurora", "60506"},  {"Chicago", ""}};
  auto table = Table::FromCsv(doc);
  ASSERT_TRUE(table.ok());
  const Table& t = table.value();
  const ColumnStore& store = t.store();
  ASSERT_EQ(store.num_attrs(), 2u);
  ASSERT_EQ(store.num_rows(), 6u);

  for (size_t a = 0; a < 2; ++a) {
    const ColumnStore::Column& col = store.column(a);
    // Code 0 is NULL; the bulk load leaves the whole dictionary sorted.
    ASSERT_GE(col.code_to_value.size(), 1u);
    EXPECT_EQ(col.code_to_value[0], Dictionary::kNull);
    EXPECT_EQ(col.sorted_prefix, col.code_to_value.size());
    for (size_t c = 2; c < col.code_to_value.size(); ++c) {
      EXPECT_LT(t.dict().GetString(col.code_to_value[c - 1]),
                t.dict().GetString(col.code_to_value[c]))
          << "column " << a << " codes " << c - 1 << "," << c;
    }
    // The decoded mirror matches codes -> code_to_value, and counts are
    // exact occurrence counts.
    ASSERT_EQ(col.codes.size(), store.num_rows());
    ASSERT_EQ(col.values.size(), store.num_rows());
    std::vector<uint32_t> counts(col.code_to_value.size(), 0);
    for (size_t r = 0; r < col.codes.size(); ++r) {
      Code code = col.codes[r];
      ASSERT_GE(code, 0);
      ASSERT_LT(static_cast<size_t>(code), col.code_to_value.size());
      EXPECT_EQ(col.values[r], col.code_to_value[static_cast<size_t>(code)]);
      counts[static_cast<size_t>(code)]++;
    }
    EXPECT_EQ(counts, col.code_counts);
  }
  // City has 3 distinct non-null values; the active domain is ascending.
  std::vector<ValueId> dom = store.ActiveDomain(0);
  EXPECT_EQ(dom.size(), 3u);
  EXPECT_TRUE(std::is_sorted(dom.begin(), dom.end()));
}

TEST(ColumnStore, SetKeepsCodesCountsAndMirrorInSync) {
  Table t = RandomTable(50, 2, 13, 6);
  const ColumnStore& store = t.store();
  // Overwrite with a mix of existing values, fresh values (unsorted
  // dictionary tail), and NULL.
  t.SetString(0, 0, "zzz-new");
  t.SetString(1, 0, "v0");
  t.Set(2, 0, Dictionary::kNull);
  const ColumnStore::Column& col = store.column(0);
  EXPECT_EQ(t.GetString(0, 0), "zzz-new");
  EXPECT_EQ(t.GetString(1, 0), "v0");
  EXPECT_EQ(t.Get(2, 0), Dictionary::kNull);
  // The fresh value landed past the sorted prefix.
  EXPECT_LT(col.sorted_prefix, col.code_to_value.size());
  std::vector<uint32_t> counts(col.code_to_value.size(), 0);
  for (size_t r = 0; r < col.codes.size(); ++r) {
    EXPECT_EQ(col.values[r],
              col.code_to_value[static_cast<size_t>(col.codes[r])]);
    counts[static_cast<size_t>(col.codes[r])]++;
  }
  EXPECT_EQ(counts, col.code_counts);
}

// ---------- Snapshot back-compat: v2 without the kColumnStore section ----

struct SnapshotBackCompatFixture {
  SnapshotBackCompatFixture()
      : dataset(MakeDirty()), config() {
    auto parsed = ParseDenialConstraints(
        "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Zip,t2.Zip)\n", schema());
    EXPECT_TRUE(parsed.ok());
    dcs = parsed.value();
    config.gibbs_burn_in = 10;
    config.gibbs_samples = 40;
    path = testing::TempDir() + "holoclean_columnar_test_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".snapshot";
  }
  ~SnapshotBackCompatFixture() { std::remove(path.c_str()); }

  static Dataset MakeDirty() {
    Table dirty(Schema({"Name", "Zip", "City"}),
                std::make_shared<Dictionary>());
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"a", "60608", "Chicago"});
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"b", "60201", "Evanston"});
    dirty.AppendRow({"a", "60609", "Chicago"});
    return Dataset(std::move(dirty));
  }
  static Schema schema() { return Schema({"Name", "Zip", "City"}); }

  Dataset dataset;
  std::vector<DenialConstraint> dcs;
  HoloCleanConfig config;
  std::string path;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Rewrites a v2 snapshot to drop its trailing kColumnStore section —
/// producing exactly the byte layout a pre-columnar writer emitted — and
/// fixes up the header's directory offset, the directory, and the trailing
/// directory checksum.
std::string DropColumnStoreSection(const std::string& bytes) {
  constexpr size_t kHeaderBytes = 16;
  constexpr size_t kChecksumBytes = 8;
  constexpr size_t kDirEntryBytes = 32;

  BinaryReader header(
      std::string_view(bytes).substr(4, kHeaderBytes - 4));
  uint32_t version = 0;
  uint64_t dir_offset = 0;
  EXPECT_TRUE(header.ReadU32(&version).ok());
  EXPECT_TRUE(header.ReadU64(&dir_offset).ok());
  EXPECT_EQ(version, kSnapshotFormatVersion);

  std::string_view dir_bytes = std::string_view(bytes).substr(
      dir_offset, bytes.size() - dir_offset - kChecksumBytes);
  BinaryReader dir(dir_bytes);
  uint64_t count = 0;
  EXPECT_TRUE(dir.ReadU64(&count).ok());
  EXPECT_GE(count, 2u);

  // The last directory entry must be the kColumnStore section (id 9).
  std::string_view last_entry = dir_bytes.substr(
      8 + (count - 1) * kDirEntryBytes, kDirEntryBytes);
  BinaryReader last(last_entry);
  uint32_t last_id = 0, last_codec = 0;
  uint64_t last_offset = 0, last_size = 0;
  EXPECT_TRUE(last.ReadU32(&last_id).ok());
  EXPECT_TRUE(last.ReadU32(&last_codec).ok());
  EXPECT_TRUE(last.ReadU64(&last_offset).ok());
  EXPECT_TRUE(last.ReadU64(&last_size).ok());
  EXPECT_EQ(last_id, 9u);  // SectionId::kColumnStore.
  EXPECT_EQ(last_offset + last_size, dir_offset);

  // New directory: one fewer entry, earlier offsets unchanged (the dropped
  // section was last).
  BinaryWriter new_dir;
  new_dir.WriteU64(count - 1);
  new_dir.WriteBytes(dir_bytes.substr(8, (count - 1) * kDirEntryBytes));

  BinaryWriter new_header;
  new_header.WriteBytes(std::string_view(bytes).substr(0, 8));
  new_header.WriteU64(last_offset);  // Directory moves up by last_size.
  BinaryWriter trailer;
  trailer.WriteU64(HashBytes(new_dir.buffer()));

  std::string out;
  out += new_header.buffer();
  out += bytes.substr(kHeaderBytes, last_offset - kHeaderBytes);
  out += new_dir.buffer();
  out += trailer.buffer();
  return out;
}

TEST(ColumnarSnapshot, V2WithoutColumnStoreSectionStillRestores) {
  SnapshotBackCompatFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  // Strip the kColumnStore section, emulating a snapshot written before
  // the columnar format extension.
  std::string original = ReadFileBytes(f.path);
  std::string stripped = DropColumnStoreSection(original);
  ASSERT_LT(stripped.size(), original.size());
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out.write(stripped.data(), static_cast<std::streamsize>(stripped.size()));
  }

  // The stripped file restores through the per-cell path and yields the
  // same table contents and repairs as the original run.
  SnapshotBackCompatFixture fresh;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();
  EXPECT_TRUE(resumed.StageIsValid(StageId::kRepair));

  const Table& a = f.dataset.dirty();
  const Table& b = fresh.dataset.dirty();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t t = 0; t < a.num_rows(); ++t) {
    for (size_t c = 0; c < a.schema().num_attrs(); ++c) {
      EXPECT_EQ(a.GetString(static_cast<TupleId>(t), static_cast<AttrId>(c)),
                b.GetString(static_cast<TupleId>(t), static_cast<AttrId>(c)));
    }
  }
  const std::vector<Repair>& ra = report.value().repairs;
  const std::vector<Repair>& rb = resumed.report().repairs;
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].cell, rb[i].cell);
    EXPECT_EQ(ra[i].old_value, rb[i].old_value);
    EXPECT_EQ(ra[i].new_value, rb[i].new_value);
    EXPECT_EQ(ra[i].probability, rb[i].probability);
  }
}

TEST(ColumnarSnapshot, RoundTripInstallsIdenticalColumns) {
  // A snapshot WITH the section restores via InstallColumns; the resulting
  // store must match the save-time store exactly (codes, dictionaries,
  // counts, mirror, sorted prefixes).
  SnapshotBackCompatFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  SnapshotBackCompatFixture fresh;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();

  const ColumnStore& a = f.dataset.dirty().store();
  const ColumnStore& b = fresh.dataset.dirty().store();
  ASSERT_EQ(a.num_attrs(), b.num_attrs());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_attrs(); ++c) {
    const ColumnStore::Column& x = a.column(c);
    const ColumnStore::Column& y = b.column(c);
    EXPECT_EQ(x.codes, y.codes) << "column " << c;
    EXPECT_EQ(x.code_to_value, y.code_to_value) << "column " << c;
    EXPECT_EQ(x.code_counts, y.code_counts) << "column " << c;
    EXPECT_EQ(x.values, y.values) << "column " << c;
    EXPECT_EQ(x.sorted_prefix, y.sorted_prefix) << "column " << c;
  }
}

}  // namespace
}  // namespace holoclean
