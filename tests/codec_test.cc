#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "holoclean/io/codec.h"
#include "holoclean/util/rng.h"

namespace holoclean {
namespace {

std::vector<uint64_t> RoundTripU64(const std::vector<uint64_t>& values) {
  BinaryWriter w;
  WriteU64Stream(&w, values);
  BinaryReader r(w.buffer());
  std::vector<uint64_t> out;
  EXPECT_TRUE(ReadU64Stream(&r, &out).ok());
  EXPECT_EQ(r.remaining(), 0u);
  return out;
}

IntEncoding EncodingOf(const std::vector<uint64_t>& values) {
  BinaryWriter w;
  WriteU64Stream(&w, values);
  // Layout: varint count, then the tag byte. All test streams have counts
  // below 128, so the count is a single byte.
  return static_cast<IntEncoding>(
      static_cast<uint8_t>(w.buffer()[1]));
}

// ---------- Varints ----------

TEST(Varint, RoundTripsBoundaryValues) {
  std::vector<uint64_t> values = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (uint64_t{1} << 56) - 1,
                                  std::numeric_limits<uint64_t>::max()};
  BinaryWriter w;
  for (uint64_t v : values) WriteVarint(&w, v);
  BinaryReader r(w.buffer());
  for (uint64_t v : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(ReadVarint(&r, &decoded).ok());
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Varint, OverlongEncodingRejected) {
  // Eleven continuation bytes claim more than 64 bits.
  BinaryWriter w;
  for (int i = 0; i < 10; ++i) w.WriteU8(0x80);
  w.WriteU8(0x01);
  BinaryReader r(w.buffer());
  uint64_t v = 0;
  EXPECT_EQ(ReadVarint(&r, &v).code(), StatusCode::kParseError);
}

TEST(Varint, TruncatedFailsCleanly) {
  BinaryWriter w;
  w.WriteU8(0x80);  // Continuation bit set, then nothing.
  BinaryReader r(w.buffer());
  uint64_t v = 0;
  EXPECT_EQ(ReadVarint(&r, &v).code(), StatusCode::kParseError);
}

TEST(Zigzag, IsInvolutionOnBoundaries) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1} << 40,
                    -(int64_t{1} << 40),
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

// ---------- Integer streams ----------

TEST(U64Stream, EmptyStream) {
  EXPECT_TRUE(RoundTripU64({}).empty());
}

TEST(U64Stream, ChoosesVarintForSmallRandomValues) {
  // Irregular small values: no delta, run, or dictionary structure.
  std::vector<uint64_t> values = {3, 99, 14, 7, 120, 55, 0, 88, 17, 42,
                                  63, 5,  91, 2, 76,  33, 8, 101, 29, 11};
  EXPECT_EQ(EncodingOf(values), IntEncoding::kVarint);
  EXPECT_EQ(RoundTripU64(values), values);
}

TEST(U64Stream, ChoosesDeltaForSortedValues) {
  // Irregular strides: sorted (so deltas are small) but with no constant
  // step for the delta-RLE form to exploit.
  std::vector<uint64_t> values = {1'000'000'000};
  uint64_t step = 1;
  for (uint64_t i = 0; i < 64; ++i) {
    step = step * 31 % 97 + 1;
    values.push_back(values.back() + step);
  }
  EXPECT_EQ(EncodingOf(values), IntEncoding::kDeltaVarint);
  EXPECT_EQ(RoundTripU64(values), values);
}

TEST(U64Stream, ChoosesDeltaRleForConstantStrideRamps) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 64; ++i) values.push_back(1'000'000'000 + i * 3);
  EXPECT_EQ(EncodingOf(values), IntEncoding::kDeltaRle);
  EXPECT_EQ(RoundTripU64(values), values);
}

TEST(U64Stream, ChoosesRleForConstantRuns) {
  std::vector<uint64_t> values(100, 7);
  values.resize(120, 1ULL << 40);
  EXPECT_EQ(EncodingOf(values), IntEncoding::kRle);
  EXPECT_EQ(RoundTripU64(values), values);
}

TEST(U64Stream, ChoosesDictionaryForLargeRepeatedValues) {
  // Three huge values shuffled with no runs or monotone order: only the
  // dictionary collapses them.
  std::vector<uint64_t> big = {0xDEADBEEFCAFEBABEULL, 0x123456789ABCDEFULL,
                               0xFFFFFFFFFFFF0000ULL};
  std::vector<uint64_t> values;
  for (int i = 0; i < 60; ++i) values.push_back(big[i % 3]);
  EXPECT_EQ(EncodingOf(values), IntEncoding::kDictionary);
  EXPECT_EQ(RoundTripU64(values), values);
}

TEST(U64Stream, ChoosesDelta2ForAlternatingSequences) {
  // Period-2 alternation of two arithmetic ramps — the direct delta
  // oscillates, the 2-back delta is constant.
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 50; ++i) {
    values.push_back(1'000'000 + i);
    values.push_back(9'000'000 + i);
  }
  IntEncoding enc = EncodingOf(values);
  EXPECT_TRUE(enc == IntEncoding::kDelta2Rle ||
              enc == IntEncoding::kDelta2Varint)
      << static_cast<int>(enc);
  EXPECT_EQ(RoundTripU64(values), values);
}

TEST(U64Stream, PropertyRandomStreamsRoundTrip) {
  Rng rng(20260726);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = rng.Below(64);
    std::vector<uint64_t> values(n);
    // Vary the shape so every encoding gets exercised across trials.
    uint64_t shape = rng.Below(5);
    uint64_t base = rng.Below(1'000'000);
    for (size_t i = 0; i < n; ++i) {
      switch (shape) {
        case 0: values[i] = rng.Below(256); break;
        case 1: values[i] = base + i * rng.Below(16); break;
        case 2: values[i] = base; break;
        case 3: values[i] = (i % 2 == 0 ? base : base * 3 + 17) + i / 2;
          break;
        default:
          values[i] = (static_cast<uint64_t>(rng.Below(1u << 30)) << 32) |
                      rng.Below(1u << 30);
      }
    }
    BinaryWriter w;
    WriteU64Stream(&w, values);
    BinaryReader r(w.buffer());
    std::vector<uint64_t> out;
    ASSERT_TRUE(ReadU64Stream(&r, &out).ok()) << "trial " << trial;
    ASSERT_EQ(out, values) << "trial " << trial;
    ASSERT_EQ(r.remaining(), 0u) << "trial " << trial;
  }
}

TEST(U64Stream, TruncatedStreamsFailCleanly) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 50; ++i) values.push_back(i * i);
  BinaryWriter w;
  WriteU64Stream(&w, values);
  // Every truncation point fails with a Status — never a crash or a
  // short silent result.
  for (size_t keep = 0; keep < w.buffer().size(); ++keep) {
    BinaryReader r(std::string_view(w.buffer()).substr(0, keep));
    std::vector<uint64_t> out;
    EXPECT_EQ(ReadU64Stream(&r, &out).code(), StatusCode::kParseError)
        << "kept " << keep;
  }
}

TEST(U64Stream, CorruptCountRejectedBeforeAllocation) {
  BinaryWriter w;
  WriteVarint(&w, uint64_t{1} << 40);  // Count far past the element cap.
  w.WriteU8(static_cast<uint8_t>(IntEncoding::kRle));
  WriteVarint(&w, 0);
  WriteVarint(&w, uint64_t{1} << 40);
  BinaryReader r(w.buffer());
  std::vector<uint64_t> out;
  EXPECT_EQ(ReadU64Stream(&r, &out).code(), StatusCode::kParseError);
}

TEST(U64Stream, RleRunOverflowRejected) {
  BinaryWriter w;
  WriteVarint(&w, 10);  // Ten elements claimed...
  w.WriteU8(static_cast<uint8_t>(IntEncoding::kRle));
  WriteVarint(&w, 5);
  WriteVarint(&w, 11);  // ...but a run of eleven.
  BinaryReader r(w.buffer());
  std::vector<uint64_t> out;
  EXPECT_EQ(ReadU64Stream(&r, &out).code(), StatusCode::kParseError);
}

TEST(U64Stream, UnknownEncodingRejected) {
  BinaryWriter w;
  WriteVarint(&w, 3);
  w.WriteU8(250);
  WriteVarint(&w, 1);
  WriteVarint(&w, 2);
  WriteVarint(&w, 3);
  BinaryReader r(w.buffer());
  std::vector<uint64_t> out;
  EXPECT_EQ(ReadU64Stream(&r, &out).code(), StatusCode::kParseError);
}

TEST(U64Stream, DictionaryIndexOutOfRangeRejected) {
  BinaryWriter w;
  WriteVarint(&w, 2);
  w.WriteU8(static_cast<uint8_t>(IntEncoding::kDictionary));
  WriteVarint(&w, 1);    // One table entry...
  WriteVarint(&w, 42);
  WriteVarint(&w, 2);    // Nested index stream: two elements,
  w.WriteU8(static_cast<uint8_t>(IntEncoding::kVarint));
  WriteVarint(&w, 0);
  WriteVarint(&w, 7);    // ...the second indexes past the table.
  BinaryReader r(w.buffer());
  std::vector<uint64_t> out;
  EXPECT_EQ(ReadU64Stream(&r, &out).code(), StatusCode::kParseError);
}

TEST(U64Stream, NestedDictionaryRejected) {
  // A dictionary's index stream claiming to itself be a dictionary would
  // recurse; the reader treats the nested tag as unknown.
  BinaryWriter w;
  WriteVarint(&w, 1);
  w.WriteU8(static_cast<uint8_t>(IntEncoding::kDictionary));
  WriteVarint(&w, 1);
  WriteVarint(&w, 42);
  WriteVarint(&w, 1);  // Nested stream of one element...
  w.WriteU8(static_cast<uint8_t>(IntEncoding::kDictionary));  // ...nested.
  BinaryReader r(w.buffer());
  std::vector<uint64_t> out;
  EXPECT_EQ(ReadU64Stream(&r, &out).code(), StatusCode::kParseError);
}

// ---------- Float streams ----------

TEST(FloatStream, F64RoundTripsBitExactly) {
  std::vector<double> values = {0.0,
                                -0.0,
                                1.0,
                                -2.5,
                                1e-300,
                                std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::quiet_NaN()};
  BinaryWriter w;
  WriteF64Stream(&w, values);
  BinaryReader r(w.buffer());
  std::vector<double> out;
  ASSERT_TRUE(ReadF64Stream(&r, &out).ok());
  ASSERT_EQ(out.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t a = 0;
    uint64_t b = 0;
    std::memcpy(&a, &values[i], 8);
    std::memcpy(&b, &out[i], 8);
    EXPECT_EQ(a, b) << "element " << i;  // Bit pattern, NaNs included.
  }
}

TEST(FloatStream, DictionaryCompressesRepetitiveDoubles) {
  // Gibbs-marginal-like data: thousands of entries, a handful of distinct
  // values. The dictionary form must beat plain 8-byte encoding by a lot.
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) values.push_back((i % 5) / 40.0);
  BinaryWriter w;
  WriteF64Stream(&w, values);
  EXPECT_LT(w.buffer().size(), values.size() * 2);
  BinaryReader r(w.buffer());
  std::vector<double> out;
  ASSERT_TRUE(ReadF64Stream(&r, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(FloatStream, F32RoundTripsAndCompressesOnes) {
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(i % 3 == 0 ? 1.0f : 1.0f / static_cast<float>(i + 1));
  }
  BinaryWriter w;
  WriteF32Stream(&w, values);
  BinaryReader r(w.buffer());
  std::vector<float> out;
  ASSERT_TRUE(ReadF32Stream(&r, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(FloatStream, TruncatedFailsCleanly) {
  std::vector<double> values(100, 0.125);
  BinaryWriter w;
  WriteF64Stream(&w, values);
  for (size_t keep : {size_t{0}, size_t{1}, size_t{5},
                      w.buffer().size() - 1}) {
    BinaryReader r(std::string_view(w.buffer()).substr(0, keep));
    std::vector<double> out;
    EXPECT_EQ(ReadF64Stream(&r, &out).code(), StatusCode::kParseError)
        << "kept " << keep;
  }
}

}  // namespace
}  // namespace holoclean
