#include <gtest/gtest.h>

#include "holoclean/constraints/evaluator.h"
#include "holoclean/constraints/parser.h"

namespace holoclean {
namespace {

Schema FoodSchema() {
  return Schema({"DBAName", "City", "State", "Zip", "Score"});
}

Table FoodTable() {
  Table t(FoodSchema(), std::make_shared<Dictionary>());
  t.AppendRow({"Johnnyo's", "Chicago", "IL", "60608", "10"});
  t.AppendRow({"Johnnyo's", "Chicago", "IL", "60609", "25"});
  t.AppendRow({"Other", "Cicago", "IL", "60608", "5"});
  t.AppendRow({"Other", "", "IL", "60608", "7"});
  return t;
}

// ---------- Parser ----------

TEST(Parser, ParsesTwoTupleFd) {
  auto dc = ParseDenialConstraint(
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)", FoodSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE(dc.value().IsTwoTuple());
  ASSERT_EQ(dc.value().preds.size(), 2u);
  EXPECT_EQ(dc.value().preds[0].op, Op::kEq);
  EXPECT_EQ(dc.value().preds[1].op, Op::kNeq);
  EXPECT_EQ(dc.value().preds[0].lhs_attr, 3);
  EXPECT_EQ(dc.value().preds[1].lhs_attr, 1);
}

TEST(Parser, ParsesConstantsAndComparisons) {
  auto dc = ParseDenialConstraint(
      "t1&EQ(t1.State,\"IL\")&GT(t1.Score,\"20\")", FoodSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_FALSE(dc.value().IsTwoTuple());
  EXPECT_TRUE(dc.value().preds[0].rhs_is_constant);
  EXPECT_EQ(dc.value().preds[0].constant, "IL");
  EXPECT_EQ(dc.value().preds[1].op, Op::kGt);
}

TEST(Parser, AllOperatorsParse) {
  for (const char* op : {"EQ", "IQ", "LT", "GT", "LTE", "GTE", "SIM"}) {
    std::string text = std::string("t1&t2&") + op + "(t1.Zip,t2.Zip)";
    EXPECT_TRUE(ParseDenialConstraint(text, FoodSchema()).ok()) << op;
  }
}

TEST(Parser, RejectsMalformedInput) {
  Schema s = FoodSchema();
  EXPECT_FALSE(ParseDenialConstraint("", s).ok());
  EXPECT_FALSE(ParseDenialConstraint("t1", s).ok());
  EXPECT_FALSE(ParseDenialConstraint("t1&FOO(t1.Zip,t2.Zip)", s).ok());
  EXPECT_FALSE(ParseDenialConstraint("t1&EQ(t1.Nope,t1.Zip)", s).ok());
  EXPECT_FALSE(ParseDenialConstraint("t1&EQ(t1.Zip)", s).ok());
  EXPECT_FALSE(ParseDenialConstraint("t1&EQ(\"c\",t1.Zip)", s).ok());
  // t2 used without declaration.
  EXPECT_FALSE(ParseDenialConstraint("t1&EQ(t1.Zip,t2.Zip)", s).ok());
  // t3 is not a valid tuple variable.
  EXPECT_FALSE(ParseDenialConstraint("t1&t2&EQ(t1.Zip,t3.Zip)", s).ok());
}

TEST(Parser, MultiLineWithComments) {
  auto dcs = ParseDenialConstraints(
      "# zip determines city\n"
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n"
      "\n"
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.State,t2.State)\n",
      FoodSchema());
  ASSERT_TRUE(dcs.ok());
  EXPECT_EQ(dcs.value().size(), 2u);
}

TEST(Parser, ToStringRoundTrips) {
  Schema s = FoodSchema();
  const char* text = "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)";
  auto dc = ParseDenialConstraint(text, s);
  ASSERT_TRUE(dc.ok());
  auto reparsed = ParseDenialConstraint(dc.value().ToString(s), s);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().ToString(s), dc.value().ToString(s));
}

// ---------- FD conversion ----------

TEST(FdToDcs, OneConstraintPerRhs) {
  auto dcs = FdToDenialConstraints(FoodSchema(), {"Zip"}, {"City", "State"});
  ASSERT_TRUE(dcs.ok());
  ASSERT_EQ(dcs.value().size(), 2u);
  for (const auto& dc : dcs.value()) {
    EXPECT_TRUE(dc.IsTwoTuple());
    ASSERT_EQ(dc.preds.size(), 2u);
    EXPECT_EQ(dc.preds.back().op, Op::kNeq);
  }
}

TEST(FdToDcs, UnknownAttributeFails) {
  EXPECT_FALSE(FdToDenialConstraints(FoodSchema(), {"Nope"}, {"City"}).ok());
  EXPECT_FALSE(FdToDenialConstraints(FoodSchema(), {"Zip"}, {"Nope"}).ok());
}

TEST(DenialConstraint, RoleAttrsAndEqualities) {
  auto dc = ParseDenialConstraint(
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)", FoodSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_EQ(dc.value().AttrsOfRole(0), (std::vector<AttrId>{1, 3}));
  EXPECT_EQ(dc.value().AttrsOfRole(1), (std::vector<AttrId>{1, 3}));
  EXPECT_EQ(dc.value().AllAttrs(), (std::vector<AttrId>{1, 3}));
  EXPECT_EQ(dc.value().CrossEqualities().size(), 1u);
}

// ---------- Evaluator ----------

TEST(Evaluator, FdViolationSemantics) {
  Table t = FoodTable();
  auto dc = ParseDenialConstraint(
      "t1&t2&EQ(t1.DBAName,t2.DBAName)&IQ(t1.Zip,t2.Zip)", t.schema());
  ASSERT_TRUE(dc.ok());
  DcEvaluator eval(&t);
  EXPECT_TRUE(eval.Violates(dc.value(), 0, 1));   // Same name, diff zip.
  EXPECT_TRUE(eval.Violates(dc.value(), 1, 0));   // Symmetric.
  EXPECT_FALSE(eval.Violates(dc.value(), 0, 2));  // Different names.
  EXPECT_FALSE(eval.Violates(dc.value(), 2, 3));  // Same zip.
  EXPECT_FALSE(eval.Violates(dc.value(), 0, 0));  // Self pair never counts.
}

TEST(Evaluator, NullsNeverViolate) {
  Table t = FoodTable();
  auto dc = ParseDenialConstraint(
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)", t.schema());
  ASSERT_TRUE(dc.ok());
  DcEvaluator eval(&t);
  // Tuple 3 has a NULL city: pairs with it hold no violation.
  EXPECT_FALSE(eval.Violates(dc.value(), 2, 3));
  EXPECT_FALSE(eval.Violates(dc.value(), 3, 0));
  // But 0 vs 2 (Chicago vs Cicago, same zip) does violate.
  EXPECT_TRUE(eval.Violates(dc.value(), 0, 2));
}

TEST(Evaluator, NumericComparisonUsedWhenBothNumeric) {
  Table t = FoodTable();
  auto dc = ParseDenialConstraint("t1&GT(t1.Score,\"9\")", t.schema());
  ASSERT_TRUE(dc.ok());
  DcEvaluator eval(&t);
  EXPECT_TRUE(eval.ViolatesSingle(dc.value(), 0));   // 10 > 9 numerically.
  EXPECT_TRUE(eval.ViolatesSingle(dc.value(), 1));   // 25 > 9.
  EXPECT_FALSE(eval.ViolatesSingle(dc.value(), 2));  // 5 < 9.
}

TEST(Evaluator, SimilarityPredicate) {
  Table t = FoodTable();
  auto dc = ParseDenialConstraint(
      "t1&t2&SIM(t1.City,t2.City)&IQ(t1.City,t2.City)&EQ(t1.Zip,t2.Zip)",
      t.schema());
  ASSERT_TRUE(dc.ok());
  DcEvaluator eval(&t, 0.8);
  // Chicago ~ Cicago (similarity 6/7 ≈ 0.857 ≥ 0.8) and same zip.
  EXPECT_TRUE(eval.Violates(dc.value(), 0, 2));
  DcEvaluator strict(&t, 0.95);
  EXPECT_FALSE(strict.Violates(dc.value(), 0, 2));
}

TEST(Evaluator, OverridesChangeOutcome) {
  Table t = FoodTable();
  auto dc = ParseDenialConstraint(
      "t1&t2&EQ(t1.DBAName,t2.DBAName)&IQ(t1.Zip,t2.Zip)", t.schema());
  ASSERT_TRUE(dc.ok());
  DcEvaluator eval(&t);
  ValueId z608 = t.dict().Lookup("60608");
  // Overriding t1's zip to match t0 resolves the violation.
  EXPECT_FALSE(
      eval.ViolatesWith(dc.value(), 0, 1, {{CellRef{1, 3}, z608}}));
  // Overriding t0's zip away creates one against t... 1 stays violated.
  ValueId z201 = t.dict().Intern("60201");
  EXPECT_TRUE(
      eval.ViolatesWith(dc.value(), 0, 1, {{CellRef{0, 3}, z201}}));
}

TEST(Evaluator, ConstantNotInDictionary) {
  Table t = FoodTable();
  // "MT" never appears in the data: EQ can't hold, IQ holds.
  auto eq = ParseDenialConstraint("t1&EQ(t1.State,\"MT\")", t.schema());
  auto neq = ParseDenialConstraint("t1&IQ(t1.State,\"MT\")", t.schema());
  ASSERT_TRUE(eq.ok());
  ASSERT_TRUE(neq.ok());
  DcEvaluator eval(&t);
  EXPECT_FALSE(eval.ViolatesSingle(eq.value(), 0));
  EXPECT_TRUE(eval.ViolatesSingle(neq.value(), 0));
}

}  // namespace
}  // namespace holoclean
