#include <gtest/gtest.h>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/core/feedback.h"
#include "holoclean/data/hospital.h"

namespace holoclean {
namespace {

struct FeedbackFixture {
  FeedbackFixture() : data(MakeHospital({300, 0.08, 91})) {
    config.tau = 0.5;
  }
  GeneratedData data;
  HoloCleanConfig config;
};

TEST(Feedback, ReviewQueueIsLowestConfidenceFirst) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  auto queue = session.ReviewQueue(10);
  ASSERT_FALSE(queue.empty());
  for (size_t i = 0; i + 1 < queue.size(); ++i) {
    EXPECT_LE(queue[i].probability, queue[i + 1].probability);
  }
  // The queue holds the globally least confident repairs.
  double max_queued = queue.back().probability;
  size_t below = 0;
  for (const Repair& r : report.value().repairs) {
    if (r.probability < max_queued) ++below;
  }
  EXPECT_LE(below, queue.size());
}

TEST(Feedback, LabelsBecomeEvidenceAndStick) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  ASSERT_TRUE(session.Run().ok());
  auto queue = session.ReviewQueue(5);
  ASSERT_FALSE(queue.empty());

  // Verify every queued repair against ground truth, as a user would.
  const Table& clean = f.data.dataset.clean();
  for (const Repair& r : queue) {
    session.AddLabel({r.cell, clean.Get(r.cell)});
  }
  auto second = session.Run();
  ASSERT_TRUE(second.ok());
  // Labeled cells now hold their verified values and are not re-repaired.
  for (const Repair& r : queue) {
    EXPECT_EQ(f.data.dataset.dirty().Get(r.cell), clean.Get(r.cell));
    for (const Repair& again : second.value().repairs) {
      EXPECT_FALSE(again.cell == r.cell);
    }
  }
}

TEST(Feedback, FeedbackNeverHurtsQuality) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  EvalResult before = EvaluateRepairs(f.data.dataset, first.value().repairs);

  const Table& clean = f.data.dataset.clean();
  for (const Repair& r : session.ReviewQueue(20)) {
    session.AddLabel({r.cell, clean.Get(r.cell)});
  }
  auto second = session.Run();
  ASSERT_TRUE(second.ok());
  // Score the combined outcome: labels count as correct repairs applied.
  EvalResult after = EvaluateRepairs(f.data.dataset, second.value().repairs);
  // Remaining-error recall cannot be compared directly (labels shrank the
  // error set); precision of the remaining repairs must not collapse.
  EXPECT_GE(after.precision, before.precision - 0.1);
}

TEST(Feedback, RelabelingSameCellReplaces) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  ValueId v1 = f.data.dataset.dirty().dict().Intern("v1");
  ValueId v2 = f.data.dataset.dirty().dict().Intern("v2");
  EXPECT_EQ(session.AddLabel({{0, 1}, v1}), 1u);
  EXPECT_EQ(session.AddLabel({{0, 1}, v2}), 1u);
  EXPECT_EQ(session.labels().size(), 1u);
  EXPECT_EQ(session.labels()[0].true_value, v2);
}

TEST(Feedback, ConfirmAndRejectHelpers) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  Repair r{{3, 2}, 5, 7, 0.6};
  session.Confirm(r);
  EXPECT_EQ(session.labels()[0].true_value, 7);
  session.Reject(r);
  EXPECT_EQ(session.labels()[0].true_value, 5);
  EXPECT_EQ(session.labels().size(), 1u);
}

}  // namespace
}  // namespace holoclean
