#include <gtest/gtest.h>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/core/feedback.h"
#include "holoclean/data/hospital.h"

namespace holoclean {
namespace {

struct FeedbackFixture {
  FeedbackFixture() : data(MakeHospital({300, 0.08, 91})) {
    config.tau = 0.5;
  }
  GeneratedData data;
  HoloCleanConfig config;
};

TEST(Feedback, ReviewQueueIsLowestConfidenceFirst) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  auto queue = session.ReviewQueue(10);
  ASSERT_FALSE(queue.empty());
  for (size_t i = 0; i + 1 < queue.size(); ++i) {
    EXPECT_LE(queue[i].probability, queue[i + 1].probability);
  }
  // The queue holds the globally least confident repairs.
  double max_queued = queue.back().probability;
  size_t below = 0;
  for (const Repair& r : report.value().repairs) {
    if (r.probability < max_queued) ++below;
  }
  EXPECT_LE(below, queue.size());
}

TEST(Feedback, LabelsBecomeEvidenceAndStick) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  ASSERT_TRUE(session.Run().ok());
  auto queue = session.ReviewQueue(5);
  ASSERT_FALSE(queue.empty());

  // Verify every queued repair against ground truth, as a user would.
  const Table& clean = f.data.dataset.clean();
  for (const Repair& r : queue) {
    session.AddLabel({r.cell, clean.Get(r.cell)});
  }
  auto second = session.Run();
  ASSERT_TRUE(second.ok());
  // Labeled cells now hold their verified values and are not re-repaired.
  for (const Repair& r : queue) {
    EXPECT_EQ(f.data.dataset.dirty().Get(r.cell), clean.Get(r.cell));
    for (const Repair& again : second.value().repairs) {
      EXPECT_FALSE(again.cell == r.cell);
    }
  }
}

TEST(Feedback, FeedbackNeverHurtsQuality) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  EvalResult before = EvaluateRepairs(f.data.dataset, first.value().repairs);

  const Table& clean = f.data.dataset.clean();
  for (const Repair& r : session.ReviewQueue(20)) {
    session.AddLabel({r.cell, clean.Get(r.cell)});
  }
  auto second = session.Run();
  ASSERT_TRUE(second.ok());
  // Score the combined outcome: labels count as correct repairs applied.
  EvalResult after = EvaluateRepairs(f.data.dataset, second.value().repairs);
  // Remaining-error recall cannot be compared directly (labels shrank the
  // error set); precision of the remaining repairs must not collapse.
  EXPECT_GE(after.precision, before.precision - 0.1);
}

TEST(Feedback, RelabelingSameCellReplaces) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  ValueId v1 = f.data.dataset.dirty().dict().Intern("v1");
  ValueId v2 = f.data.dataset.dirty().dict().Intern("v2");
  EXPECT_EQ(session.AddLabel({{0, 1}, v1}), 1u);
  EXPECT_EQ(session.AddLabel({{0, 1}, v2}), 1u);
  EXPECT_EQ(session.labels().size(), 1u);
  EXPECT_EQ(session.labels()[0].true_value, v2);
}

TEST(Feedback, FailedRunRestoresPreviousPinEntry) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  ASSERT_TRUE(session.Run().ok());
  auto queue = session.ReviewQueue(1);
  ASSERT_FALSE(queue.empty());
  Repair r = queue.front();
  ValueId v1 = r.new_value;
  session.AddLabel({r.cell, v1});
  ASSERT_TRUE(session.Run().ok());
  ASSERT_EQ(session.pinned().at(r.cell), v1);
  ASSERT_EQ(f.data.dataset.dirty().Get(r.cell), v1);

  // Re-pin with a newer verdict, but sabotage the run so it fails after
  // the pin is applied: injected external-data inputs whose matching
  // dependency names an unknown attribute make CompileStage error out.
  ValueId v2 = r.old_value;  // The user reverses the verdict.
  session.AddLabel({r.cell, v2});
  ExtDictCollection dicts;
  Table records(Schema({"K"}), std::make_shared<Dictionary>());
  records.AppendRow({"k"});
  dicts.Add("bad", std::move(records));
  std::vector<MatchingDependency> mds(1);
  mds[0].dict_id = 0;
  mds[0].conditions.push_back({"NoSuchAttr", "K", false, 0.85});
  mds[0].target_data_attr = "NoSuchAttr";
  mds[0].target_ext_attr = "K";
  session.session()->context().dicts = &dicts;
  session.session()->context().mds = &mds;
  ASSERT_FALSE(session.Run().ok());

  // The rollback restored the table value AND the previous pin entry —
  // erasing the entry would leave the table holding a value the
  // bookkeeping no longer knows is pinned.
  ASSERT_EQ(session.pinned().count(r.cell), 1u);
  EXPECT_EQ(session.pinned().at(r.cell), v1);
  EXPECT_EQ(f.data.dataset.dirty().Get(r.cell), v1);

  // Remove the sabotage: the session recovers and the newer verdict lands.
  session.session()->context().dicts = nullptr;
  session.session()->context().mds = nullptr;
  auto recovered = session.Run();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(session.pinned().at(r.cell), v2);
  EXPECT_EQ(f.data.dataset.dirty().Get(r.cell), v2);
}

TEST(Feedback, ConfirmAndRejectHelpers) {
  FeedbackFixture f;
  FeedbackSession session(&f.data.dataset, f.data.dcs, f.config);
  Repair r{{3, 2}, 5, 7, 0.6};
  session.Confirm(r);
  EXPECT_EQ(session.labels()[0].true_value, 7);
  session.Reject(r);
  EXPECT_EQ(session.labels()[0].true_value, 5);
  EXPECT_EQ(session.labels().size(), 1u);
}

}  // namespace
}  // namespace holoclean
