#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/pipeline.h"
#include "holoclean/io/binary_io.h"
#include "holoclean/io/session_snapshot.h"
#include "holoclean/util/hash.h"

namespace holoclean {
namespace {

// ---------- Binary primitives ----------

TEST(BinaryIo, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-42);
  w.WriteF32(1.5f);
  w.WriteF64(-2.25);
  w.WriteString("hello");
  w.WriteString("");

  BinaryReader r(w.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string s1, s2;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadF32(&f32).ok());
  ASSERT_TRUE(r.ReadF64(&f64).ok());
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIo, TruncatedReadsFailCleanly) {
  BinaryWriter w;
  w.WriteU32(5);
  BinaryReader r(w.buffer());
  uint64_t u64 = 0;
  EXPECT_EQ(r.ReadU64(&u64).code(), StatusCode::kParseError);
}

TEST(BinaryIo, HugeCountRejectedBeforeAllocation) {
  BinaryWriter w;
  w.WriteU64(uint64_t{1} << 60);  // Claims 2^60 elements in 0 bytes.
  BinaryReader r(w.buffer());
  size_t n = 0;
  EXPECT_EQ(r.ReadCount(8, &n).code(), StatusCode::kParseError);
}

// ---------- Artifact codecs ----------

TEST(SnapshotCodec, FactorGraphRoundTripsExactly) {
  FactorGraph graph;
  Variable v1;
  v1.cell = {3, 1};
  v1.domain = {5, 9, 11};
  v1.init_index = 1;
  v1.is_evidence = false;
  v1.prior_bias = {0.0, 1.0, 0.0};
  v1.feat_begin = {0, 2, 2, 3};
  v1.features = {{42u, 0.5f}, {43u, 1.0f}, {99u, -2.0f}};
  graph.AddVariable(v1);
  Variable v2;
  v2.cell = {4, 0};
  v2.domain = {7};
  v2.init_index = 0;
  v2.is_evidence = true;
  v2.prior_bias = {0.25};
  v2.feat_begin = {0, 1};
  v2.features = {{7u, 1.0f}};
  graph.AddVariable(v2);
  DcFactor f;
  f.dc_index = 0;
  f.t1 = 3;
  f.t2 = 4;
  f.weight = 4.0;
  f.var_ids = {0, 1};
  graph.AddDcFactor(f);

  BinaryWriter w;
  SerializeFactorGraph(graph, &w);
  BinaryReader r(w.buffer());
  FactorGraph loaded;
  ASSERT_TRUE(DeserializeFactorGraph(&r, &loaded).ok());

  ASSERT_EQ(loaded.num_variables(), 2u);
  EXPECT_EQ(loaded.variable(0).domain, v1.domain);
  EXPECT_EQ(loaded.variable(0).init_index, 1);
  EXPECT_EQ(loaded.variable(0).prior_bias, v1.prior_bias);
  EXPECT_EQ(loaded.variable(0).feat_begin, v1.feat_begin);
  ASSERT_EQ(loaded.variable(0).features.size(), 3u);
  EXPECT_EQ(loaded.variable(0).features[2].weight_key, 99u);
  EXPECT_EQ(loaded.variable(0).features[2].activation, -2.0f);
  EXPECT_TRUE(loaded.variable(1).is_evidence);
  // Derived indexes are rebuilt identically.
  EXPECT_EQ(loaded.query_vars(), std::vector<int32_t>{0});
  EXPECT_EQ(loaded.evidence_vars(), std::vector<int32_t>{1});
  EXPECT_EQ(loaded.VarOfCell({3, 1}), 0);
  ASSERT_EQ(loaded.dc_factors().size(), 1u);
  EXPECT_EQ(loaded.FactorsOfVar(0), std::vector<int32_t>{0});
  EXPECT_EQ(loaded.FactorsOfVar(1), std::vector<int32_t>{0});
  EXPECT_EQ(loaded.NumGroundedFactors(), graph.NumGroundedFactors());
}

TEST(SnapshotCodec, GraphIdsValidatedAgainstBounds) {
  FactorGraph graph;
  Variable v;
  v.cell = {0, 0};
  v.domain = {5};
  v.init_index = 0;
  v.prior_bias = {0.0};
  v.feat_begin = {0, 0};
  graph.AddVariable(v);
  DcFactor f;
  f.dc_index = 1;
  f.var_ids = {0};
  graph.AddDcFactor(f);
  BinaryWriter w;
  SerializeFactorGraph(graph, &w);

  // Domain value id 5 exceeds a 4-entry dictionary.
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 4;
    EXPECT_EQ(DeserializeFactorGraph(&r, &loaded, bounds).code(),
              StatusCode::kParseError);
  }
  // dc_index 1 exceeds a 1-constraint set.
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 6;
    bounds.num_dcs = 1;
    EXPECT_EQ(DeserializeFactorGraph(&r, &loaded, bounds).code(),
              StatusCode::kParseError);
  }
  // Within bounds: loads.
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 6;
    bounds.num_dcs = 2;
    EXPECT_TRUE(DeserializeFactorGraph(&r, &loaded, bounds).ok());
  }
}

TEST(SnapshotCodec, MalformedGraphIsRejectedNotAborted) {
  // A factor referencing a variable id beyond the variable count must fail
  // with a Status (AddDcFactor would write out of bounds otherwise).
  BinaryWriter w;
  w.WriteU64(0);  // No variables.
  w.WriteU64(1);  // One factor.
  w.WriteI32(0);
  w.WriteI32(0);
  w.WriteI32(1);
  w.WriteF64(1.0);
  w.WriteU64(1);
  w.WriteI32(3);  // var_ids = {3} — unknown variable.
  BinaryReader r(w.buffer());
  FactorGraph loaded;
  EXPECT_EQ(DeserializeFactorGraph(&r, &loaded).code(),
            StatusCode::kParseError);
}

TEST(SnapshotCodec, WeightStoreRoundTripsAndIsDeterministic) {
  WeightStore weights;
  weights.Set(17u, 0.5);
  weights.Set(3u, -1.25);
  weights.Set(0xFFFFFFFFFFFFULL, 1e-9);

  BinaryWriter w1;
  SerializeWeightStore(weights, &w1);
  BinaryReader r(w1.buffer());
  WeightStore loaded;
  ASSERT_TRUE(DeserializeWeightStore(&r, &loaded).ok());
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.Get(17u), 0.5);
  EXPECT_DOUBLE_EQ(loaded.Get(3u), -1.25);
  EXPECT_DOUBLE_EQ(loaded.Get(0xFFFFFFFFFFFFULL), 1e-9);

  // Same logical content serializes to the same bytes (sorted by key),
  // regardless of hash-map iteration order.
  BinaryWriter w2;
  SerializeWeightStore(loaded, &w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(SnapshotCodec, MarginalsRoundTrip) {
  Marginals m(2);
  m.probs()[0] = {0.25, 0.75};
  m.probs()[1] = {1.0};
  BinaryWriter w;
  SerializeMarginals(m, &w);
  BinaryReader r(w.buffer());
  Marginals loaded(0);
  ASSERT_TRUE(DeserializeMarginals(&r, &loaded).ok());
  EXPECT_EQ(loaded.Of(0), (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(loaded.Of(1), std::vector<double>{1.0});
  EXPECT_EQ(loaded.MapIndex(0), 1);
}

// ---------- Fingerprints ----------

TEST(Fingerprint, SensitiveToResultAffectingKnobsOnly) {
  HoloCleanConfig a;
  HoloCleanConfig b = a;
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
  b.num_threads = 13;  // Thread count never changes results.
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
  b.tau = 0.31;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.gibbs_samples += 1;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
}

// ---------- Whole-session snapshots ----------

struct SnapshotFixture {
  SnapshotFixture() : dataset(MakeDirty()) {
    auto parsed = ParseDenialConstraints(
        "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Zip,t2.Zip)\n"
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n",
        dataset.dirty().schema());
    EXPECT_TRUE(parsed.ok());
    dcs = parsed.value();
    config.tau = 0.3;
    config.dc_mode = DcMode::kBoth;
    config.partitioning = true;
    config.gibbs_burn_in = 10;
    config.gibbs_samples = 40;
    path = testing::TempDir() + "holoclean_io_test_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".snapshot";
  }
  ~SnapshotFixture() { std::remove(path.c_str()); }

  static Dataset MakeDirty() {
    Table dirty(Schema({"Name", "Zip", "City"}),
                std::make_shared<Dictionary>());
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"a", "60608", "Chicago"});
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"b", "60201", "Evanston"});
    dirty.AppendRow({"a", "60609", "Chicago"});
    dirty.AppendRow({"b", "60201", "Evnaston"});
    return Dataset(std::move(dirty));
  }

  Dataset dataset;
  std::vector<DenialConstraint> dcs;
  HoloCleanConfig config;
  std::string path;
};

// The acceptance scenario: save after learn, restore in a "fresh process"
// (a second dataset instance), re-run from infer, and compare against an
// uninterrupted in-process run — repairs and marginals bit-identical.
TEST(SessionSnapshot, SaveAfterLearnRestoreRerunFromInferIsBitIdentical) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);

  // Uninterrupted reference run.
  SnapshotFixture ref;
  auto ref_session = HoloClean(ref.config).Open(&ref.dataset, ref.dcs);
  ASSERT_TRUE(ref_session.ok());
  auto ref_report = ref_session.value().Run();
  ASSERT_TRUE(ref_report.ok());

  // Interrupted run: stop after learn, save, "restart the process".
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  SnapshotFixture fresh;
  auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();
  EXPECT_TRUE(resumed.StageIsValid(StageId::kLearn));
  EXPECT_FALSE(resumed.StageIsValid(StageId::kInfer));
  // The persisted graph is reused exactly like an in-process rerun: no
  // re-grounding.
  size_t ground_runs_before = resumed.context().ground_runs;
  auto resumed_report = resumed.Run();
  ASSERT_TRUE(resumed_report.ok());
  EXPECT_EQ(resumed.context().ground_runs, ground_runs_before);

  const Report& a = ref_report.value();
  const Report& b = resumed_report.value();
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].cell, b.repairs[i].cell);
    EXPECT_EQ(a.repairs[i].old_value, b.repairs[i].old_value);
    EXPECT_EQ(a.repairs[i].new_value, b.repairs[i].new_value);
    EXPECT_DOUBLE_EQ(a.repairs[i].probability, b.repairs[i].probability);
  }
  // Marginals, bit for bit.
  const auto& ma = ref_session.value().context().marginals.probs();
  const auto& mb = resumed.context().marginals.probs();
  ASSERT_EQ(ma.size(), mb.size());
  for (size_t v = 0; v < ma.size(); ++v) {
    ASSERT_EQ(ma[v].size(), mb[v].size());
    for (size_t k = 0; k < ma[v].size(); ++k) {
      EXPECT_EQ(ma[v][k], mb[v][k]) << "var " << v << " candidate " << k;
    }
  }
}

TEST(SessionSnapshot, FullRunRoundTripsEverything) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  SnapshotFixture fresh;
  auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();
  EXPECT_TRUE(resumed.StageIsValid(StageId::kRepair));

  // Everything is cached: Run() is a lookup that returns the saved report.
  auto cached = resumed.Run();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached.value().repairs.size(), report.value().repairs.size());
  EXPECT_EQ(cached.value().posteriors.size(),
            report.value().posteriors.size());
  EXPECT_EQ(cached.value().ddlog, report.value().ddlog);
  EXPECT_EQ(cached.value().stats.num_grounded_factors,
            report.value().stats.num_grounded_factors);
  const auto& timings = cached.value().stats.stage_timings;
  for (const StageTiming& t : timings) EXPECT_TRUE(t.cached);
  // Cached stages cost nothing this run (legacy view agrees).
  EXPECT_DOUBLE_EQ(cached.value().stats.TotalSeconds(), 0.0);
}

TEST(SessionSnapshot, RestoreReplaysFeedbackPins) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().repairs.empty());
  Repair verified = first.value().repairs.front();
  session.PinCell(verified.cell, verified.new_value);
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  // The fresh dataset still holds the pre-pin (dirty) value; restore
  // replays the pinned value onto it.
  SnapshotFixture fresh;
  ASSERT_NE(fresh.dataset.dirty().Get(verified.cell), verified.new_value);
  auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(fresh.dataset.dirty().Get(verified.cell), verified.new_value);
}

TEST(SessionSnapshot, ConfigFingerprintMismatchRejected) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  SnapshotFixture fresh;
  HoloCleanConfig other = f.config;
  other.gibbs_samples += 1;
  auto restored =
      HoloClean(other).Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);

  // Thread count is not part of the fingerprint.
  HoloCleanConfig threads = f.config;
  threads.num_threads = 2;
  auto ok = HoloClean(threads).Restore(f.path, &fresh.dataset, fresh.dcs);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(SessionSnapshot, DatasetAndConstraintMismatchRejected) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  // Different constraint set.
  SnapshotFixture fresh1;
  std::vector<DenialConstraint> one_dc = {fresh1.dcs[0]};
  auto bad_dcs = cleaner.Restore(f.path, &fresh1.dataset, one_dc);
  ASSERT_FALSE(bad_dcs.ok());
  EXPECT_EQ(bad_dcs.status().code(), StatusCode::kInvalidArgument);

  // Different data file: same shape, but the values intern in a different
  // order, so the dictionary prefixes diverge.
  Table other(Schema({"Name", "Zip", "City"}),
              std::make_shared<Dictionary>());
  for (int i = 0; i < 12; ++i) other.AppendRow({"zzz", "10001", "Albany"});
  Dataset other_ds(std::move(other));
  auto bad_data = cleaner.Restore(f.path, &other_ds, f.dcs);
  ASSERT_FALSE(bad_data.ok());
  EXPECT_EQ(bad_data.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionSnapshot, ExternalDataInputsMismatchRejected) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  // The snapshot was saved without external data; restoring with a
  // dictionary + matching dependency present must be rejected — the
  // cached compile artifacts were not derived from them.
  SnapshotFixture fresh;
  ExtDictCollection dicts;
  Table records(Schema({"Ext_Zip", "Ext_City"}),
                std::make_shared<Dictionary>());
  records.AppendRow({"60608", "Chicago"});
  dicts.Add("listing", std::move(records));
  std::vector<MatchingDependency> mds(1);
  mds[0].dict_id = 0;
  mds[0].conditions.push_back({"Zip", "Ext_Zip", false, 0.85});
  mds[0].target_data_attr = "City";
  mds[0].target_ext_attr = "Ext_City";
  auto restored =
      cleaner.Restore(f.path, &fresh.dataset, fresh.dcs, &dicts, &mds);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionSnapshot, FailedLoadLeavesDatasetUntouched) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().repairs.empty());
  // Pin a cell so a successful restore WOULD rewrite the table.
  Repair verified = first.value().repairs.front();
  session.PinCell(verified.cell, verified.new_value);
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  // Tamper: append junk inside the payload and recompute the checksum, so
  // every validation passes and parsing fails only at the very end
  // ("trailing bytes") — after all artifact sections were consumed.
  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  std::string payload = bytes.substr(16, bytes.size() - 24);
  payload.append("junk");
  BinaryWriter tampered;
  tampered.WriteBytes(bytes.substr(0, 4));
  tampered.WriteU32(kSnapshotFormatVersion);
  tampered.WriteU64(payload.size());
  tampered.WriteBytes(payload);
  tampered.WriteU64(HashBytes(payload));
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << tampered.buffer();
  }

  SnapshotFixture fresh;
  ValueId before = fresh.dataset.dirty().Get(verified.cell);
  size_t dict_before = fresh.dataset.dirty().dict().size();
  auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  // The failed load committed nothing: no replayed pin, no interned values.
  EXPECT_EQ(fresh.dataset.dirty().Get(verified.cell), before);
  EXPECT_EQ(fresh.dataset.dirty().dict().size(), dict_before);
}

TEST(SessionSnapshot, VersionMismatchRejected) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kDetect).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  // Bump the version field (bytes 4..7) without touching the payload.
  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[4] = static_cast<char>(kSnapshotFormatVersion + 1);
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  SnapshotFixture fresh;
  auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionSnapshot, TruncatedAndCorruptSnapshotsFailCleanly) {
  SnapshotFixture f;
  HoloClean cleaner(f.config);
  auto opened = cleaner.Open(&f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  auto report = opened.value().Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }

  // Truncation at several depths, including mid-header and mid-payload.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{10}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, keep);
    out.close();
    SnapshotFixture fresh;
    auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
    ASSERT_FALSE(restored.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError)
        << "kept " << keep << " bytes";
  }

  // Bit flip in the middle of the payload: checksum catches it.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  SnapshotFixture fresh;
  auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);

  // Not a snapshot at all.
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << "name,zip\njust,a csv\n";
  }
  auto not_snapshot = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(not_snapshot.ok());

  EXPECT_EQ(cleaner.Restore("/nonexistent/nope.snapshot", &fresh.dataset,
                            fresh.dcs)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SessionSnapshot, SavedPrefixesRestoreAtEveryStage) {
  for (int last = 0; last < kNumStages; ++last) {
    SnapshotFixture f;
    HoloClean cleaner(f.config);
    auto opened = cleaner.Open(&f.dataset, f.dcs);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(
        opened.value().RunThrough(static_cast<StageId>(last)).ok());
    ASSERT_TRUE(opened.value().Save(f.path).ok());

    SnapshotFixture fresh;
    auto restored = cleaner.Restore(f.path, &fresh.dataset, fresh.dcs);
    ASSERT_TRUE(restored.ok()) << "stage " << last << ": "
                               << restored.status();
    Session resumed = std::move(restored).value();
    EXPECT_TRUE(resumed.StageIsValid(static_cast<StageId>(last)));
    if (last + 1 < kNumStages) {
      EXPECT_FALSE(resumed.StageIsValid(static_cast<StageId>(last + 1)));
    }
    // The restored session completes the pipeline from where it left off.
    auto finished = resumed.Run();
    ASSERT_TRUE(finished.ok()) << "stage " << last;
    EXPECT_FALSE(finished.value().repairs.empty()) << "stage " << last;
  }
}

}  // namespace
}  // namespace holoclean
