#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/engine.h"
#include "holoclean/io/binary_io.h"
#include "holoclean/io/session_snapshot.h"
#include "holoclean/util/hash.h"

#include "session_helpers.h"

namespace holoclean {
namespace {

// ---------- Binary primitives ----------

TEST(BinaryIo, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-42);
  w.WriteF32(1.5f);
  w.WriteF64(-2.25);
  w.WriteString("hello");
  w.WriteString("");

  BinaryReader r(w.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string s1, s2;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadF32(&f32).ok());
  ASSERT_TRUE(r.ReadF64(&f64).ok());
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIo, TruncatedReadsFailCleanly) {
  BinaryWriter w;
  w.WriteU32(5);
  BinaryReader r(w.buffer());
  uint64_t u64 = 0;
  EXPECT_EQ(r.ReadU64(&u64).code(), StatusCode::kParseError);
}

TEST(BinaryIo, HugeCountRejectedBeforeAllocation) {
  BinaryWriter w;
  w.WriteU64(uint64_t{1} << 60);  // Claims 2^60 elements in 0 bytes.
  BinaryReader r(w.buffer());
  size_t n = 0;
  EXPECT_EQ(r.ReadCount(8, &n).code(), StatusCode::kParseError);
}

// ---------- Artifact codecs ----------

TEST(SnapshotCodec, FactorGraphRoundTripsExactly) {
  FactorGraph graph;
  Variable v1;
  v1.cell = {3, 1};
  v1.domain = {5, 9, 11};
  v1.init_index = 1;
  v1.is_evidence = false;
  v1.prior_bias = {0.0, 1.0, 0.0};
  v1.feat_begin = {0, 2, 2, 3};
  v1.features = {{42u, 0.5f}, {43u, 1.0f}, {99u, -2.0f}};
  graph.AddVariable(v1);
  Variable v2;
  v2.cell = {4, 0};
  v2.domain = {7};
  v2.init_index = 0;
  v2.is_evidence = true;
  v2.prior_bias = {0.25};
  v2.feat_begin = {0, 1};
  v2.features = {{7u, 1.0f}};
  graph.AddVariable(v2);
  DcFactor f;
  f.dc_index = 0;
  f.t1 = 3;
  f.t2 = 4;
  f.weight = 4.0;
  f.var_ids = {0, 1};
  graph.AddDcFactor(f);

  BinaryWriter w;
  SerializeFactorGraph(graph, SectionCodec::kRaw, &w);
  BinaryReader r(w.buffer());
  FactorGraph loaded;
  ASSERT_TRUE(DeserializeFactorGraph(&r, SectionCodec::kRaw, &loaded).ok());

  ASSERT_EQ(loaded.num_variables(), 2u);
  EXPECT_EQ(loaded.variable(0).domain, v1.domain);
  EXPECT_EQ(loaded.variable(0).init_index, 1);
  EXPECT_EQ(loaded.variable(0).prior_bias, v1.prior_bias);
  EXPECT_EQ(loaded.variable(0).feat_begin, v1.feat_begin);
  ASSERT_EQ(loaded.variable(0).features.size(), 3u);
  EXPECT_EQ(loaded.variable(0).features[2].weight_key, 99u);
  EXPECT_EQ(loaded.variable(0).features[2].activation, -2.0f);
  EXPECT_TRUE(loaded.variable(1).is_evidence);
  // Derived indexes are rebuilt identically.
  EXPECT_EQ(loaded.query_vars(), std::vector<int32_t>{0});
  EXPECT_EQ(loaded.evidence_vars(), std::vector<int32_t>{1});
  EXPECT_EQ(loaded.VarOfCell({3, 1}), 0);
  ASSERT_EQ(loaded.dc_factors().size(), 1u);
  EXPECT_EQ(loaded.FactorsOfVar(0), std::vector<int32_t>{0});
  EXPECT_EQ(loaded.FactorsOfVar(1), std::vector<int32_t>{0});
  EXPECT_EQ(loaded.NumGroundedFactors(), graph.NumGroundedFactors());
}

TEST(SnapshotCodec, GraphIdsValidatedAgainstBounds) {
  FactorGraph graph;
  Variable v;
  v.cell = {0, 0};
  v.domain = {5};
  v.init_index = 0;
  v.prior_bias = {0.0};
  v.feat_begin = {0, 0};
  graph.AddVariable(v);
  DcFactor f;
  f.dc_index = 1;
  f.var_ids = {0};
  graph.AddDcFactor(f);
  BinaryWriter w;
  SerializeFactorGraph(graph, SectionCodec::kRaw, &w);

  // Domain value id 5 exceeds a 4-entry dictionary.
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 4;
    EXPECT_EQ(DeserializeFactorGraph(&r, SectionCodec::kRaw, &loaded, bounds).code(),
              StatusCode::kParseError);
  }
  // dc_index 1 exceeds a 1-constraint set.
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 6;
    bounds.num_dcs = 1;
    EXPECT_EQ(DeserializeFactorGraph(&r, SectionCodec::kRaw, &loaded, bounds).code(),
              StatusCode::kParseError);
  }
  // Within bounds: loads.
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 6;
    bounds.num_dcs = 2;
    EXPECT_TRUE(DeserializeFactorGraph(&r, SectionCodec::kRaw, &loaded, bounds).ok());
  }
}

TEST(SnapshotCodec, MalformedGraphIsRejectedNotAborted) {
  // A factor referencing a variable id beyond the variable count must fail
  // with a Status (AddDcFactor would write out of bounds otherwise).
  BinaryWriter w;
  w.WriteU64(0);  // No variables.
  w.WriteU64(1);  // One factor.
  w.WriteI32(0);
  w.WriteI32(0);
  w.WriteI32(1);
  w.WriteF64(1.0);
  w.WriteU64(1);
  w.WriteI32(3);  // var_ids = {3} — unknown variable.
  BinaryReader r(w.buffer());
  FactorGraph loaded;
  EXPECT_EQ(DeserializeFactorGraph(&r, SectionCodec::kRaw, &loaded).code(),
            StatusCode::kParseError);
}

TEST(SnapshotCodec, WeightStoreRoundTripsAndIsDeterministic) {
  WeightStore weights;
  weights.Set(17u, 0.5);
  weights.Set(3u, -1.25);
  weights.Set(0xFFFFFFFFFFFFULL, 1e-9);

  BinaryWriter w1;
  SerializeWeightStore(weights, SectionCodec::kRaw, &w1);
  BinaryReader r(w1.buffer());
  WeightStore loaded;
  ASSERT_TRUE(DeserializeWeightStore(&r, SectionCodec::kRaw, &loaded).ok());
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.Get(17u), 0.5);
  EXPECT_DOUBLE_EQ(loaded.Get(3u), -1.25);
  EXPECT_DOUBLE_EQ(loaded.Get(0xFFFFFFFFFFFFULL), 1e-9);

  // Same logical content serializes to the same bytes (sorted by key),
  // regardless of hash-map iteration order.
  BinaryWriter w2;
  SerializeWeightStore(loaded, SectionCodec::kRaw, &w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(SnapshotCodec, MarginalsRoundTrip) {
  Marginals m(2);
  m.probs()[0] = {0.25, 0.75};
  m.probs()[1] = {1.0};
  BinaryWriter w;
  SerializeMarginals(m, SectionCodec::kRaw, &w);
  BinaryReader r(w.buffer());
  Marginals loaded(0);
  ASSERT_TRUE(DeserializeMarginals(&r, SectionCodec::kRaw, &loaded).ok());
  EXPECT_EQ(loaded.Of(0), (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(loaded.Of(1), std::vector<double>{1.0});
  EXPECT_EQ(loaded.MapIndex(0), 1);
}

// ---------- Fingerprints ----------

TEST(Fingerprint, SensitiveToResultAffectingKnobsOnly) {
  HoloCleanConfig a;
  HoloCleanConfig b = a;
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
  b.num_threads = 13;  // Thread count never changes results.
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
  b.tau = 0.31;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.gibbs_samples += 1;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
}

// ---------- Whole-session snapshots ----------

struct SnapshotFixture {
  SnapshotFixture() : dataset(MakeDirty()) {
    auto parsed = ParseDenialConstraints(
        "t1&t2&EQ(t1.Name,t2.Name)&IQ(t1.Zip,t2.Zip)\n"
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n",
        dataset.dirty().schema());
    EXPECT_TRUE(parsed.ok());
    dcs = parsed.value();
    config.tau = 0.3;
    config.dc_mode = DcMode::kBoth;
    config.partitioning = true;
    config.gibbs_burn_in = 10;
    config.gibbs_samples = 40;
    path = testing::TempDir() + "holoclean_io_test_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".snapshot";
  }
  ~SnapshotFixture() { std::remove(path.c_str()); }

  static Dataset MakeDirty() {
    Table dirty(Schema({"Name", "Zip", "City"}),
                std::make_shared<Dictionary>());
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"a", "60608", "Chicago"});
    for (int i = 0; i < 5; ++i) dirty.AppendRow({"b", "60201", "Evanston"});
    dirty.AppendRow({"a", "60609", "Chicago"});
    dirty.AppendRow({"b", "60201", "Evnaston"});
    return Dataset(std::move(dirty));
  }

  Dataset dataset;
  std::vector<DenialConstraint> dcs;
  HoloCleanConfig config;
  std::string path;
};

// The acceptance scenario: save after learn, restore in a "fresh process"
// (a second dataset instance), re-run from infer, and compare against an
// uninterrupted in-process run — repairs and marginals bit-identical.
TEST(SessionSnapshot, SaveAfterLearnRestoreRerunFromInferIsBitIdentical) {
  SnapshotFixture f;

  // Uninterrupted reference run.
  SnapshotFixture ref;
  auto ref_session = test_helpers::OpenSessionOver(ref.config, &ref.dataset, ref.dcs);
  ASSERT_TRUE(ref_session.ok());
  auto ref_report = ref_session.value().Run();
  ASSERT_TRUE(ref_report.ok());

  // Interrupted run: stop after learn, save, "restart the process".
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  SnapshotFixture fresh;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();
  EXPECT_TRUE(resumed.StageIsValid(StageId::kLearn));
  EXPECT_FALSE(resumed.StageIsValid(StageId::kInfer));
  // The persisted graph is reused exactly like an in-process rerun: no
  // re-grounding.
  size_t ground_runs_before = resumed.context().ground_runs;
  auto resumed_report = resumed.Run();
  ASSERT_TRUE(resumed_report.ok());
  EXPECT_EQ(resumed.context().ground_runs, ground_runs_before);

  const Report& a = ref_report.value();
  const Report& b = resumed_report.value();
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].cell, b.repairs[i].cell);
    EXPECT_EQ(a.repairs[i].old_value, b.repairs[i].old_value);
    EXPECT_EQ(a.repairs[i].new_value, b.repairs[i].new_value);
    EXPECT_DOUBLE_EQ(a.repairs[i].probability, b.repairs[i].probability);
  }
  // Marginals, bit for bit.
  const auto& ma = ref_session.value().context().marginals.probs();
  const auto& mb = resumed.context().marginals.probs();
  ASSERT_EQ(ma.size(), mb.size());
  for (size_t v = 0; v < ma.size(); ++v) {
    ASSERT_EQ(ma[v].size(), mb[v].size());
    for (size_t k = 0; k < ma[v].size(); ++k) {
      EXPECT_EQ(ma[v][k], mb[v][k]) << "var " << v << " candidate " << k;
    }
  }
}

TEST(SessionSnapshot, FullRunRoundTripsEverything) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  SnapshotFixture fresh;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();
  EXPECT_TRUE(resumed.StageIsValid(StageId::kRepair));

  // Everything is cached: Run() is a lookup that returns the saved report.
  auto cached = resumed.Run();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached.value().repairs.size(), report.value().repairs.size());
  EXPECT_EQ(cached.value().posteriors.size(),
            report.value().posteriors.size());
  EXPECT_EQ(cached.value().ddlog, report.value().ddlog);
  EXPECT_EQ(cached.value().stats.num_grounded_factors,
            report.value().stats.num_grounded_factors);
  const auto& timings = cached.value().stats.stage_timings;
  for (const StageTiming& t : timings) EXPECT_TRUE(t.cached);
  // Cached stages cost nothing this run (legacy view agrees).
  EXPECT_DOUBLE_EQ(cached.value().stats.TotalSeconds(), 0.0);
}

TEST(SessionSnapshot, RestoreReplaysFeedbackPins) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().repairs.empty());
  Repair verified = first.value().repairs.front();
  session.PinCell(verified.cell, verified.new_value);
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  // The fresh dataset still holds the pre-pin (dirty) value; restore
  // replays the pinned value onto it.
  SnapshotFixture fresh;
  ASSERT_NE(fresh.dataset.dirty().Get(verified.cell), verified.new_value);
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(fresh.dataset.dirty().Get(verified.cell), verified.new_value);
}

TEST(SessionSnapshot, ConfigFingerprintMismatchRejected) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  SnapshotFixture fresh;
  HoloCleanConfig other = f.config;
  other.gibbs_samples += 1;
  auto restored =
      test_helpers::RestoreSessionOver(other, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);

  // Thread count is not part of the fingerprint.
  HoloCleanConfig threads = f.config;
  threads.num_threads = 2;
  auto ok = test_helpers::RestoreSessionOver(threads, f.path, &fresh.dataset, fresh.dcs);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(SessionSnapshot, DatasetAndConstraintMismatchRejected) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  // Different constraint set.
  SnapshotFixture fresh1;
  std::vector<DenialConstraint> one_dc = {fresh1.dcs[0]};
  auto bad_dcs = test_helpers::RestoreSessionOver(f.config, f.path, &fresh1.dataset, one_dc);
  ASSERT_FALSE(bad_dcs.ok());
  EXPECT_EQ(bad_dcs.status().code(), StatusCode::kInvalidArgument);

  // Different data file: same shape, but the values intern in a different
  // order, so the dictionary prefixes diverge.
  Table other(Schema({"Name", "Zip", "City"}),
              std::make_shared<Dictionary>());
  for (int i = 0; i < 12; ++i) other.AppendRow({"zzz", "10001", "Albany"});
  Dataset other_ds(std::move(other));
  auto bad_data = test_helpers::RestoreSessionOver(f.config, f.path, &other_ds, f.dcs);
  ASSERT_FALSE(bad_data.ok());
  EXPECT_EQ(bad_data.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionSnapshot, ExternalDataInputsMismatchRejected) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  // The snapshot was saved without external data; restoring with a
  // dictionary + matching dependency present must be rejected — the
  // cached compile artifacts were not derived from them.
  SnapshotFixture fresh;
  ExtDictCollection dicts;
  Table records(Schema({"Ext_Zip", "Ext_City"}),
                std::make_shared<Dictionary>());
  records.AppendRow({"60608", "Chicago"});
  dicts.Add("listing", std::move(records));
  std::vector<MatchingDependency> mds(1);
  mds[0].dict_id = 0;
  mds[0].conditions.push_back({"Zip", "Ext_Zip", false, 0.85});
  mds[0].target_data_attr = "City";
  mds[0].target_ext_attr = "Ext_City";
  auto restored =
      test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs, &dicts, &mds);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionSnapshot, FailedLoadLeavesDatasetUntouched) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().repairs.empty());
  // Pin a cell so a successful restore WOULD rewrite the table.
  Repair verified = first.value().repairs.front();
  session.PinCell(verified.cell, verified.new_value);
  ASSERT_TRUE(session.Run().ok());
  // v1: its monolithic layout allows rebuilding a checksum-valid file, so
  // the tamper below exercises the deepest possible failure point.
  SnapshotSaveOptions v1;
  v1.format_version = kSnapshotFormatV1;
  ASSERT_TRUE(session.Save(f.path, v1).ok());

  // Tamper: append junk inside the payload and recompute the checksum, so
  // every validation passes and parsing fails only at the very end
  // ("trailing bytes") — after all artifact sections were consumed.
  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  std::string payload = bytes.substr(16, bytes.size() - 24);
  payload.append("junk");
  BinaryWriter tampered;
  tampered.WriteBytes(bytes.substr(0, 4));
  tampered.WriteU32(kSnapshotFormatV1);
  tampered.WriteU64(payload.size());
  tampered.WriteBytes(payload);
  tampered.WriteU64(HashBytes(payload));
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << tampered.buffer();
  }

  SnapshotFixture fresh;
  ValueId before = fresh.dataset.dirty().Get(verified.cell);
  size_t dict_before = fresh.dataset.dirty().dict().size();
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  // The failed load committed nothing: no replayed pin, no interned values.
  EXPECT_EQ(fresh.dataset.dirty().Get(verified.cell), before);
  EXPECT_EQ(fresh.dataset.dirty().dict().size(), dict_before);
}

TEST(SessionSnapshot, CorruptSectionLeavesDatasetUntouched) {
  // The v2 counterpart: a bit flip inside one section fails that section's
  // checksum, and nothing is committed — the staged-load contract holds
  // for the sectioned format too.
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().repairs.empty());
  Repair verified = first.value().repairs.front();
  session.PinCell(verified.cell, verified.new_value);
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x10);
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  SnapshotFixture fresh;
  ValueId before = fresh.dataset.dirty().Get(verified.cell);
  size_t dict_before = fresh.dataset.dirty().dict().size();
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_EQ(fresh.dataset.dirty().Get(verified.cell), before);
  EXPECT_EQ(fresh.dataset.dirty().dict().size(), dict_before);
}

TEST(SessionSnapshot, VersionMismatchRejected) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().RunThrough(StageId::kDetect).ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  // Bump the version field (bytes 4..7) without touching the payload.
  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[4] = static_cast<char>(kSnapshotFormatVersion + 1);
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  SnapshotFixture fresh;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionSnapshot, TruncatedAndCorruptSnapshotsFailCleanly) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  auto report = opened.value().Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(opened.value().Save(f.path).ok());

  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }

  // Truncation at several depths, including mid-header and mid-payload.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{10}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, keep);
    out.close();
    SnapshotFixture fresh;
    auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
    ASSERT_FALSE(restored.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError)
        << "kept " << keep << " bytes";
  }

  // Bit flip in the middle of the payload: checksum catches it.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  SnapshotFixture fresh;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);

  // Not a snapshot at all.
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << "name,zip\njust,a csv\n";
  }
  auto not_snapshot = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_FALSE(not_snapshot.ok());

  EXPECT_EQ(test_helpers::RestoreSessionOver(f.config, "/nonexistent/nope.snapshot", &fresh.dataset,
                            fresh.dcs)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SnapshotCodec, PackedFactorGraphRoundTripsExactly) {
  FactorGraph graph;
  Variable v1;
  v1.cell = {3, 1};
  v1.domain = {5, 9, 11};
  v1.init_index = 1;
  v1.is_evidence = false;
  v1.prior_bias = {0.0, 1.0, 0.0};
  v1.feat_begin = {0, 2, 2, 3};
  v1.features = {{42u, 0.5f}, {43u, 1.0f}, {0xF00000000000BEEFULL, -2.0f}};
  graph.AddVariable(v1);
  Variable v2;
  v2.cell = {4, 0};
  v2.domain = {7};
  v2.init_index = -1;
  v2.is_evidence = true;
  v2.prior_bias = {0.25};
  v2.feat_begin = {0, 1};
  v2.features = {{7u, 1.0f}};
  graph.AddVariable(v2);
  DcFactor f;
  f.dc_index = 0;
  f.t1 = 3;
  f.t2 = 4;
  f.weight = 4.0;
  f.var_ids = {1, 0};  // Deliberately unsorted: order must survive.
  graph.AddDcFactor(f);
  DcFactor g;
  g.dc_index = 1;
  g.t1 = 4;
  g.t2 = 3;
  g.weight = 2.0;
  g.var_ids = {};
  graph.AddDcFactor(g);

  BinaryWriter w;
  SerializeFactorGraph(graph, SectionCodec::kPacked, &w);
  BinaryReader r(w.buffer());
  FactorGraph loaded;
  ASSERT_TRUE(
      DeserializeFactorGraph(&r, SectionCodec::kPacked, &loaded).ok());
  EXPECT_EQ(r.remaining(), 0u);

  ASSERT_EQ(loaded.num_variables(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const Variable& a = graph.variable(static_cast<int>(i));
    const Variable& b = loaded.variable(static_cast<int>(i));
    EXPECT_EQ(a.cell, b.cell) << i;
    EXPECT_EQ(a.domain, b.domain) << i;
    EXPECT_EQ(a.init_index, b.init_index) << i;
    EXPECT_EQ(a.is_evidence, b.is_evidence) << i;
    EXPECT_EQ(a.prior_bias, b.prior_bias) << i;
    EXPECT_EQ(a.feat_begin, b.feat_begin) << i;
    ASSERT_EQ(a.features.size(), b.features.size()) << i;
    for (size_t k = 0; k < a.features.size(); ++k) {
      EXPECT_EQ(a.features[k].weight_key, b.features[k].weight_key);
      EXPECT_EQ(a.features[k].activation, b.features[k].activation);
    }
  }
  ASSERT_EQ(loaded.dc_factors().size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded.dc_factors()[i].dc_index,
              graph.dc_factors()[i].dc_index);
    EXPECT_EQ(loaded.dc_factors()[i].t1, graph.dc_factors()[i].t1);
    EXPECT_EQ(loaded.dc_factors()[i].t2, graph.dc_factors()[i].t2);
    EXPECT_EQ(loaded.dc_factors()[i].weight, graph.dc_factors()[i].weight);
    EXPECT_EQ(loaded.dc_factors()[i].var_ids,
              graph.dc_factors()[i].var_ids);
  }
  EXPECT_EQ(loaded.query_vars(), graph.query_vars());
  EXPECT_EQ(loaded.evidence_vars(), graph.evidence_vars());
}

TEST(SnapshotCodec, PackedGraphIdsValidatedAgainstBounds) {
  FactorGraph graph;
  Variable v;
  v.cell = {0, 0};
  v.domain = {5};
  v.init_index = 0;
  v.prior_bias = {0.0};
  v.feat_begin = {0, 0};
  graph.AddVariable(v);
  DcFactor f;
  f.dc_index = 1;
  f.var_ids = {0};
  graph.AddDcFactor(f);
  BinaryWriter w;
  SerializeFactorGraph(graph, SectionCodec::kPacked, &w);

  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 4;  // Domain value id 5 is out of range.
    EXPECT_EQ(
        DeserializeFactorGraph(&r, SectionCodec::kPacked, &loaded, bounds)
            .code(),
        StatusCode::kParseError);
  }
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 6;
    bounds.num_dcs = 1;  // dc_index 1 is out of range.
    EXPECT_EQ(
        DeserializeFactorGraph(&r, SectionCodec::kPacked, &loaded, bounds)
            .code(),
        StatusCode::kParseError);
  }
  {
    BinaryReader r(w.buffer());
    FactorGraph loaded;
    FactorGraphBounds bounds;
    bounds.dict_size = 6;
    bounds.num_dcs = 2;
    EXPECT_TRUE(
        DeserializeFactorGraph(&r, SectionCodec::kPacked, &loaded, bounds)
            .ok());
  }
}

TEST(SessionSnapshot, RawAndPackedCodecsRestoreIdentically) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.Run().ok());
  std::string raw_path = f.path + ".raw";
  SnapshotSaveOptions raw;
  raw.codec = SectionCodec::kRaw;
  ASSERT_TRUE(session.Save(raw_path, raw).ok());
  ASSERT_TRUE(session.Save(f.path).ok());  // Packed default.

  SnapshotFixture fresh_raw;
  SnapshotFixture fresh_packed;
  auto from_raw = test_helpers::RestoreSessionOver(f.config, raw_path, &fresh_raw.dataset,
                                  fresh_raw.dcs);
  auto from_packed =
      test_helpers::RestoreSessionOver(f.config, f.path, &fresh_packed.dataset, fresh_packed.dcs);
  ASSERT_TRUE(from_raw.ok()) << from_raw.status();
  ASSERT_TRUE(from_packed.ok()) << from_packed.status();

  // Artifacts agree bit for bit across codecs.
  const PipelineContext& a = from_raw.value().context();
  const PipelineContext& b = from_packed.value().context();
  ASSERT_EQ(a.graph.num_variables(), b.graph.num_variables());
  for (size_t i = 0; i < a.graph.num_variables(); ++i) {
    const Variable& va = a.graph.variable(static_cast<int>(i));
    const Variable& vb = b.graph.variable(static_cast<int>(i));
    ASSERT_EQ(va.features.size(), vb.features.size());
    for (size_t k = 0; k < va.features.size(); ++k) {
      ASSERT_EQ(va.features[k].weight_key, vb.features[k].weight_key);
      ASSERT_EQ(va.features[k].activation, vb.features[k].activation);
    }
  }
  ASSERT_EQ(a.marginals.probs(), b.marginals.probs());
  ASSERT_EQ(a.report.repairs.size(), b.report.repairs.size());
  std::remove(raw_path.c_str());
}

TEST(SessionSnapshot, V1WritePathStillRoundTrips) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.RunThrough(StageId::kLearn).ok());
  SnapshotSaveOptions v1;
  v1.format_version = kSnapshotFormatV1;
  ASSERT_TRUE(session.Save(f.path, v1).ok());

  SnapshotFixture fresh;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored.value().StageIsValid(StageId::kLearn));
  auto finished = restored.value().Run();
  ASSERT_TRUE(finished.ok());
  EXPECT_FALSE(finished.value().repairs.empty());
}

// The format's back-compat contract, executable: a v1 snapshot written by
// the PR 2 code (checked into tests/data/) must keep restoring — and
// resuming bit-identically — under every later format revision.
TEST(SessionSnapshot, GoldenV1SnapshotRestoresBitIdentically) {
  std::string golden =
      std::string(HOLOCLEAN_TEST_DATA_DIR) + "/golden_v1.snapshot";
  SnapshotFixture f;
  auto restored = test_helpers::RestoreSessionOver(f.config, golden, &f.dataset, f.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();
  EXPECT_TRUE(resumed.StageIsValid(StageId::kLearn));
  EXPECT_FALSE(resumed.StageIsValid(StageId::kInfer));
  auto finished = resumed.Run();
  ASSERT_TRUE(finished.ok());

  // Reference: the same pipeline run entirely in-process today.
  SnapshotFixture ref;
  auto ref_session = test_helpers::OpenSessionOver(ref.config, &ref.dataset, ref.dcs);
  ASSERT_TRUE(ref_session.ok());
  auto ref_report = ref_session.value().Run();
  ASSERT_TRUE(ref_report.ok());

  const Report& a = ref_report.value();
  const Report& b = finished.value();
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].cell, b.repairs[i].cell);
    EXPECT_EQ(a.repairs[i].new_value, b.repairs[i].new_value);
    EXPECT_EQ(a.repairs[i].probability, b.repairs[i].probability);
  }
  const auto& ma = ref_session.value().context().marginals.probs();
  const auto& mb = resumed.context().marginals.probs();
  ASSERT_EQ(ma, mb);
}

TEST(SessionSnapshot, MmapRestoreMatchesEagerRestoreBitForBit) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  SnapshotFixture eager_fixture;
  auto eager = test_helpers::RestoreSessionOver(f.config, f.path, &eager_fixture.dataset,
                               eager_fixture.dcs);
  ASSERT_TRUE(eager.ok()) << eager.status();

  SnapshotFixture lazy_fixture;
  SnapshotLoadOptions lazy;
  lazy.lazy_graph = true;
  auto mapped = test_helpers::RestoreSessionOver(f.config, f.path, &lazy_fixture.dataset,
                                lazy_fixture.dcs, nullptr, nullptr, nullptr,
                                lazy);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  Session lazy_session = std::move(mapped).value();

  // The graph section is still on disk: nothing materialized yet, but the
  // stage prefix is already valid.
  EXPECT_NE(lazy_session.context().deferred_graph, nullptr);
  EXPECT_EQ(lazy_session.context().graph.num_variables(), 0u);
  EXPECT_TRUE(lazy_session.StageIsValid(StageId::kLearn));

  auto eager_report = eager.value().Run();
  auto lazy_report = lazy_session.Run();
  ASSERT_TRUE(eager_report.ok());
  ASSERT_TRUE(lazy_report.ok());
  // First stage access materialized and dropped the source.
  EXPECT_EQ(lazy_session.context().deferred_graph, nullptr);
  EXPECT_GT(lazy_session.context().graph.num_variables(), 0u);

  const Report& a = eager_report.value();
  const Report& b = lazy_report.value();
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].cell, b.repairs[i].cell);
    EXPECT_EQ(a.repairs[i].new_value, b.repairs[i].new_value);
    EXPECT_EQ(a.repairs[i].probability, b.repairs[i].probability);
  }
  ASSERT_EQ(eager.value().context().marginals.probs(),
            lazy_session.context().marginals.probs());
}

TEST(SessionSnapshot, MmapRestoreOfFullRunNeverTouchesGraph) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto report = session.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  SnapshotFixture fresh;
  SnapshotLoadOptions lazy;
  lazy.lazy_graph = true;
  auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs, nullptr,
                                  nullptr, nullptr, lazy);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();

  // Every stage is cached: the cached-report lookup never needs the graph,
  // so the section stays unmaterialized — the whole point of lazy restore.
  auto cached = resumed.Run();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached.value().repairs.size(), report.value().repairs.size());
  EXPECT_NE(resumed.context().deferred_graph, nullptr);

  // Re-running a suffix that needs the graph materializes it on demand.
  resumed.Invalidate(StageId::kRepair);
  auto rerun = resumed.Run();
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(resumed.context().deferred_graph, nullptr);
  EXPECT_EQ(rerun.value().repairs.size(), report.value().repairs.size());
}

TEST(SessionSnapshot, CorruptGraphSectionSurfacesAtFirstStageUnderMmap) {
  SnapshotFixture f;
  auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.RunThrough(StageId::kLearn).ok());
  ASSERT_TRUE(session.Save(f.path).ok());

  // Locate the graph section via the directory (header: magic, u32
  // version, u64 dir_offset; entries: u32 id, u32 codec, u64 offset,
  // u64 size, u64 checksum) and flip one byte inside it.
  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  BinaryReader header(std::string_view(bytes).substr(8, 8));
  uint64_t dir_offset = 0;
  ASSERT_TRUE(header.ReadU64(&dir_offset).ok());
  BinaryReader dir(std::string_view(bytes).substr(
      dir_offset, bytes.size() - dir_offset - 8));
  uint64_t count = 0;
  ASSERT_TRUE(dir.ReadU64(&count).ok());
  uint64_t graph_offset = 0;
  uint64_t graph_size = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    uint32_t codec = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint64_t checksum = 0;
    ASSERT_TRUE(dir.ReadU32(&id).ok());
    ASSERT_TRUE(dir.ReadU32(&codec).ok());
    ASSERT_TRUE(dir.ReadU64(&offset).ok());
    ASSERT_TRUE(dir.ReadU64(&size).ok());
    ASSERT_TRUE(dir.ReadU64(&checksum).ok());
    if (id == 5) {  // kGraph
      graph_offset = offset;
      graph_size = size;
    }
  }
  ASSERT_GT(graph_size, 0u);
  size_t victim = graph_offset + graph_size / 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x20);
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  // Eager restore checks every section up front and fails immediately.
  SnapshotFixture eager_fixture;
  auto eager = test_helpers::RestoreSessionOver(f.config, f.path, &eager_fixture.dataset,
                               eager_fixture.dcs);
  ASSERT_FALSE(eager.ok());
  EXPECT_EQ(eager.status().code(), StatusCode::kParseError);

  // Lazy restore succeeds — the graph section was never read — and the
  // corruption surfaces as a clean Status from the first stage that needs
  // the graph. Retrying reports the same error instead of running on an
  // empty graph.
  SnapshotFixture lazy_fixture;
  SnapshotLoadOptions lazy;
  lazy.lazy_graph = true;
  auto mapped = test_helpers::RestoreSessionOver(f.config, f.path, &lazy_fixture.dataset,
                                lazy_fixture.dcs, nullptr, nullptr, nullptr,
                                lazy);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  Session resumed = std::move(mapped).value();
  auto run = resumed.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kParseError);
  auto retry = resumed.Run();
  ASSERT_FALSE(retry.ok());
  EXPECT_EQ(retry.status().code(), StatusCode::kParseError);

  // Invalidating from compile discards the pending corrupt section (the
  // graph will be rebuilt from scratch), so the session recovers: saving
  // the shorter prefix must not touch the deferred bytes, and a fresh run
  // regrounds and completes.
  resumed.Invalidate(StageId::kCompile);
  std::string prefix_path = f.path + ".prefix";
  EXPECT_TRUE(resumed.Save(prefix_path, {}).ok());
  std::remove(prefix_path.c_str());
  auto rebuilt = resumed.Run();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(resumed.context().deferred_graph, nullptr);
}

TEST(SessionSnapshot, CorruptHeaderOffsetsFailCleanly) {
  SnapshotFixture f;

  // v2 header whose directory offset sits near 2^64: the bounds check must
  // fail cleanly instead of wrapping into an out-of-range substr.
  {
    BinaryWriter w;
    w.WriteBytes("HCSS");
    w.WriteU32(kSnapshotFormatVersion);
    w.WriteU64(0xFFFFFFFFFFFFFFF0ULL);
    w.WriteU64(0);  // Padding so the file passes the minimum-size check.
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << w.buffer();
    out.close();
    auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &f.dataset, f.dcs);
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }

  // v1 payload carrying a huge row count with a valid checksum: the column
  // allocation must be bounded by the bytes present, not the claimed rows.
  {
    BinaryWriter payload;
    payload.WriteU64(ConfigFingerprint(f.config));
    payload.WriteU64(3);
    payload.WriteString("Name");
    payload.WriteString("Zip");
    payload.WriteString("City");
    payload.WriteU64(uint64_t{1} << 40);  // num_rows
    payload.WriteU64(0);                  // dcs fingerprint (never reached)
    payload.WriteU64(0);                  // extdata fingerprint
    payload.WriteU64(1);                  // dictionary: one entry
    payload.WriteString("a");
    BinaryWriter file;
    file.WriteBytes("HCSS");
    file.WriteU32(kSnapshotFormatV1);
    file.WriteU64(payload.buffer().size());
    file.WriteBytes(payload.buffer());
    file.WriteU64(HashBytes(payload.buffer()));
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << file.buffer();
    out.close();
    auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &f.dataset, f.dcs);
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }
}

TEST(SessionSnapshot, SavedPrefixesRestoreAtEveryStage) {
  for (int last = 0; last < kNumStages; ++last) {
    SnapshotFixture f;
    auto opened = test_helpers::OpenSessionOver(f.config, &f.dataset, f.dcs);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(
        opened.value().RunThrough(static_cast<StageId>(last)).ok());
    ASSERT_TRUE(opened.value().Save(f.path).ok());

    SnapshotFixture fresh;
    auto restored = test_helpers::RestoreSessionOver(f.config, f.path, &fresh.dataset, fresh.dcs);
    ASSERT_TRUE(restored.ok()) << "stage " << last << ": "
                               << restored.status();
    Session resumed = std::move(restored).value();
    EXPECT_TRUE(resumed.StageIsValid(static_cast<StageId>(last)));
    if (last + 1 < kNumStages) {
      EXPECT_FALSE(resumed.StageIsValid(static_cast<StageId>(last + 1)));
    }
    // The restored session completes the pipeline from where it left off.
    auto finished = resumed.Run();
    ASSERT_TRUE(finished.ok()) << "stage " << last;
    EXPECT_FALSE(finished.value().repairs.empty()) << "stage " << last;
  }
}

}  // namespace
}  // namespace holoclean
