// Tests for the serving tier: wire framing, request parsing and config
// overrides, the concurrent dataset registry, per-tenant admission
// control, the in-process and TCP request paths of CleaningServer, and
// the drain -> restart round trip (warm state survives a restart with
// bit-identical repairs).

#include <gtest/gtest.h>
#include <unistd.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "holoclean/data/food.h"
#include "holoclean/serve/admission.h"
#include "holoclean/serve/client.h"
#include "holoclean/serve/protocol.h"
#include "holoclean/serve/registry.h"
#include "holoclean/serve/server.h"
#include "holoclean/util/csv.h"

namespace holoclean {
namespace {

using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::CleaningServer;
using serve::Client;
using serve::DatasetRegistry;
using serve::Op;
using serve::Request;
using serve::ServerOptions;

/// Raw registration payloads for a small generated Food instance.
struct Payload {
  std::string csv;
  std::string dcs;
};

Payload MakePayload(size_t i, size_t rows = 120) {
  FoodOptions options;
  options.num_rows = rows;
  options.error_rate = 0.05 + 0.01 * static_cast<double>(i);
  options.seed = 9200 + i;
  GeneratedData data = MakeFood(options);
  Payload payload;
  payload.csv = WriteCsv(data.dataset.dirty().ToCsv());
  for (const DenialConstraint& dc : data.dcs) {
    payload.dcs += dc.ToString(data.dataset.dirty().schema()) + "\n";
  }
  return payload;
}

JsonValue RegisterFrame(const std::string& tenant, const std::string& dataset,
                        const Payload& payload) {
  Request req;
  req.op = Op::kRegisterDataset;
  req.tenant = tenant;
  req.dataset = dataset;
  req.csv_text = payload.csv;
  req.dc_text = payload.dcs;
  return req.ToJson();
}

JsonValue CleanFrame(const std::string& tenant, const std::string& dataset) {
  Request req;
  req.op = Op::kClean;
  req.tenant = tenant;
  req.dataset = dataset;
  return req.ToJson();
}

/// A fast pipeline config for serving tests.
HoloCleanConfig FastConfig() {
  HoloCleanConfig config;
  config.epochs = 5;
  config.gibbs_burn_in = 3;
  config.gibbs_samples = 10;
  return config;
}

ServerOptions FastServerOptions() {
  ServerOptions options;
  options.default_config = FastConfig();
  options.engine_threads = 2;
  return options;
}

/// A fresh empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "holoclean_serve_" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string RepairsDump(const JsonValue& response) {
  const JsonValue* report = response.Find("report");
  EXPECT_NE(report, nullptr);
  const JsonValue* repairs =
      report != nullptr ? report->Find("repairs") : nullptr;
  EXPECT_NE(repairs, nullptr);
  return repairs != nullptr ? repairs->Dump() : "";
}

// --- Protocol ----------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  JsonValue obj = JsonValue::Object();
  obj.Set("op", JsonValue::String("list_datasets"));
  obj.Set("n", JsonValue::Number(42));
  ASSERT_TRUE(serve::WriteFrame(fds[1], obj).ok());
  ::close(fds[1]);

  Result<JsonValue> read = serve::ReadFrame(fds[0]);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value().Dump(), obj.Dump());

  // The pipe is now at EOF: a clean close reads as kNotFound.
  Result<JsonValue> eof = serve::ReadFrame(fds[0]);
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  ::close(fds[0]);
}

TEST(ServeProtocol, HostileAndTruncatedFramesAreRejected) {
  {
    // Length prefix past the frame bound must be refused pre-allocation.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(fds[1], huge, 4), 4);
    ::close(fds[1]);
    Result<JsonValue> r = serve::ReadFrame(fds[0]);
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    ::close(fds[0]);
  }
  {
    // Connection dying mid-prefix.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], "\x00\x00", 2), 2);
    ::close(fds[1]);
    Result<JsonValue> r = serve::ReadFrame(fds[0]);
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    ::close(fds[0]);
  }
  {
    // Connection dying mid-payload.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    unsigned char prefix[4] = {0, 0, 0, 10};
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);
    ASSERT_EQ(::write(fds[1], "{\"a\"", 4), 4);
    ::close(fds[1]);
    Result<JsonValue> r = serve::ReadFrame(fds[0]);
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    ::close(fds[0]);
  }
}

TEST(ServeProtocol, RequestRoundTripsThroughJson) {
  Request req;
  req.op = Op::kFeedback;
  req.tenant = "acme";
  req.dataset = "food";
  req.cell_tid = 7;
  req.cell_attr = "City";
  req.cell_value = "Chicago";
  req.config_overrides.Set("epochs", JsonValue::Number(3));

  Result<Request> parsed = Request::FromJson(req.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().op, Op::kFeedback);
  EXPECT_EQ(parsed.value().tenant, "acme");
  EXPECT_EQ(parsed.value().dataset, "food");
  EXPECT_EQ(parsed.value().cell_tid, 7);
  EXPECT_EQ(parsed.value().cell_attr, "City");
  EXPECT_EQ(parsed.value().cell_value, "Chicago");
  EXPECT_EQ(parsed.value().config_overrides.GetInt("epochs"), 3);
}

TEST(ServeProtocol, MalformedRequestsAreRejected) {
  EXPECT_FALSE(Request::FromJson(JsonValue::Array()).ok());
  EXPECT_FALSE(Request::FromJson(JsonValue::Object()).ok());  // No op.

  JsonValue bad_op = JsonValue::Object();
  bad_op.Set("op", JsonValue::String("explode"));
  EXPECT_FALSE(Request::FromJson(bad_op).ok());

  JsonValue bad_cell = JsonValue::Object();
  bad_cell.Set("op", JsonValue::String("feedback"));
  bad_cell.Set("cell", JsonValue::String("not an object"));
  EXPECT_FALSE(Request::FromJson(bad_cell).ok());
}

TEST(ServeProtocol, ConfigOverridesApplyAndRejectUnknownKeys) {
  HoloCleanConfig config;
  JsonValue overrides = JsonValue::Object();
  overrides.Set("tau", JsonValue::Number(0.7));
  overrides.Set("epochs", JsonValue::Number(3));
  overrides.Set("compiled_kernel", JsonValue::Bool(false));
  overrides.Set("seed", JsonValue::Number(99));
  ASSERT_TRUE(serve::ApplyConfigOverrides(overrides, &config).ok());
  EXPECT_DOUBLE_EQ(config.tau, 0.7);
  EXPECT_EQ(config.epochs, 3);
  EXPECT_FALSE(config.compiled_kernel);
  EXPECT_EQ(config.seed, 99u);
  // Untouched knobs keep their defaults.
  EXPECT_EQ(config.gibbs_samples, HoloCleanConfig().gibbs_samples);

  JsonValue unknown = JsonValue::Object();
  unknown.Set("tao", JsonValue::Number(0.7));  // Typo must not pass silently.
  Status st = serve::ApplyConfigOverrides(unknown, &config);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  JsonValue wrong_type = JsonValue::Object();
  wrong_type.Set("epochs", JsonValue::String("three"));
  EXPECT_FALSE(serve::ApplyConfigOverrides(wrong_type, &config).ok());
}

TEST(ServeProtocol, ErrorCodesDistinguishOverloadFromDraining) {
  EXPECT_EQ(serve::ErrorCodeFor(Status::OutOfRange("overloaded: busy")),
            "overloaded");
  EXPECT_EQ(serve::ErrorCodeFor(Status::OutOfRange("draining: bye")),
            "draining");
  EXPECT_EQ(serve::ErrorCodeFor(Status::NotFound("x")), "not_found");
  EXPECT_EQ(serve::ErrorCodeFor(Status::AlreadyExists("x")), "already_exists");
  EXPECT_EQ(serve::ErrorCodeFor(Status::Internal("x")), "internal");
}

// --- Registry ----------------------------------------------------------------

TEST(ServeRegistry, RegisterFindDropLifecycle) {
  DatasetRegistry registry;
  Payload payload = MakePayload(0);

  ASSERT_TRUE(registry.Register("acme", "food", payload.csv, payload.dcs).ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Register("acme", "food", payload.csv, payload.dcs).code(),
            StatusCode::kAlreadyExists);

  auto found = registry.Find("acme", "food");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value()->base->num_rows(), 120u);
  EXPECT_FALSE(found.value()->dcs->empty());

  // Same dataset name under another tenant is a distinct entry.
  ASSERT_TRUE(
      registry.Register("globex", "food", payload.csv, payload.dcs).ok());
  EXPECT_EQ(registry.size(), 2u);

  ASSERT_TRUE(registry.Drop("acme", "food").ok());
  EXPECT_EQ(registry.Drop("acme", "food").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Find("acme", "food").status().code(),
            StatusCode::kNotFound);
  // The handed-out entry stays alive for holders.
  EXPECT_EQ(found.value()->base->num_rows(), 120u);
}

TEST(ServeRegistry, RejectsBadNamesAndPayloads) {
  DatasetRegistry registry;
  Payload payload = MakePayload(0);
  EXPECT_FALSE(registry.Register("", "food", payload.csv, payload.dcs).ok());
  EXPECT_FALSE(
      registry.Register("a/b", "food", payload.csv, payload.dcs).ok());
  EXPECT_FALSE(
      registry.Register("acme", "fo od", payload.csv, payload.dcs).ok());
  EXPECT_FALSE(registry.Register("acme", "food", "", payload.dcs).ok());
  EXPECT_FALSE(registry.Register("acme", "food", payload.csv, "").ok());
  EXPECT_FALSE(
      registry.Register("acme", "food", "not,a\nvalid", payload.dcs).ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ServeRegistry, ConcurrentRegisterDropRacesStayConsistent) {
  DatasetRegistry registry;
  Payload payload = MakePayload(0, 40);
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;

  // Each thread hammers its own name while everyone also races for one
  // contended name; listers iterate concurrently.
  std::atomic<int> contended_wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string mine = "ds" + std::to_string(t);
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_TRUE(
            registry.Register("acme", mine, payload.csv, payload.dcs).ok());
        auto found = registry.Find("acme", mine);
        ASSERT_TRUE(found.ok());
        EXPECT_EQ(found.value()->base->num_rows(), 40u);
        if (registry.Register("acme", "contended", payload.csv, payload.dcs)
                .ok()) {
          contended_wins.fetch_add(1);
          EXPECT_TRUE(registry.Drop("acme", "contended").ok());
        }
        for (const auto& entry : registry.List()) {
          EXPECT_FALSE(entry->dataset.empty());
        }
        ASSERT_TRUE(registry.Drop("acme", mine).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_GT(contended_wins.load(), 0);
}

// --- Admission ---------------------------------------------------------------

TEST(ServeAdmission, PerTenantQuotaIsolatesTenants) {
  AdmissionOptions options;
  options.per_tenant_inflight = 2;
  options.global_inflight = 8;
  AdmissionController admission(options);

  auto a1 = admission.Admit("acme");
  auto a2 = admission.Admit("acme");
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());

  // Tenant quota exhausted: acme bounces, globex keeps full service.
  auto a3 = admission.Admit("acme");
  EXPECT_EQ(a3.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(serve::ErrorCodeFor(a3.status()), "overloaded");
  auto b1 = admission.Admit("globex");
  EXPECT_TRUE(b1.ok());

  // Releasing a slot re-admits the tenant (RAII ticket).
  a1.value().Release();
  EXPECT_TRUE(admission.Admit("acme").ok());
  EXPECT_EQ(admission.inflight("globex"), 1u);
}

TEST(ServeAdmission, GlobalBoundShedsEveryone) {
  AdmissionOptions options;
  options.per_tenant_inflight = 8;
  options.global_inflight = 3;
  AdmissionController admission(options);

  std::vector<AdmissionController::Ticket> held;
  for (int i = 0; i < 3; ++i) {
    auto t = admission.Admit("tenant" + std::to_string(i));
    ASSERT_TRUE(t.ok());
    held.push_back(std::move(t).value());
  }
  EXPECT_EQ(admission.total_inflight(), 3u);
  EXPECT_EQ(admission.Admit("anyone").status().code(),
            StatusCode::kOutOfRange);
  held.clear();  // RAII release.
  EXPECT_EQ(admission.total_inflight(), 0u);
  EXPECT_TRUE(admission.Admit("anyone").ok());
}

// --- Server (in-process) -----------------------------------------------------

TEST(ServeServer, LifecycleAndWarmRepeatIsBitIdentical) {
  CleaningServer server(FastServerOptions());
  Payload payload = MakePayload(0);

  JsonValue reg = server.Handle(RegisterFrame("acme", "food", payload));
  ASSERT_TRUE(reg.GetBool("ok")) << reg.Dump();
  EXPECT_EQ(reg.GetInt("rows"), 120);

  // Registering the same name again fails cleanly.
  JsonValue dup = server.Handle(RegisterFrame("acme", "food", payload));
  EXPECT_FALSE(dup.GetBool("ok"));
  EXPECT_EQ(dup.GetString("error"), "already_exists");

  JsonValue cold = server.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(cold.GetBool("ok")) << cold.Dump();
  EXPECT_FALSE(cold.GetBool("warm"));
  ASSERT_GT(RepairsDump(cold).size(), 2u);

  JsonValue warm = server.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(warm.GetBool("ok")) << warm.Dump();
  EXPECT_TRUE(warm.GetBool("warm"));
  EXPECT_EQ(RepairsDump(warm), RepairsDump(cold));

  // Feedback pins a cell and re-cleans incrementally.
  Request feedback;
  feedback.op = Op::kFeedback;
  feedback.tenant = "acme";
  feedback.dataset = "food";
  feedback.cell_tid = 0;
  feedback.cell_attr = "City";
  feedback.cell_value = "Chicago";
  JsonValue fb = server.Handle(feedback.ToJson());
  ASSERT_TRUE(fb.GetBool("ok")) << fb.Dump();

  Request status;
  status.op = Op::kExplainStatus;
  status.tenant = "acme";
  status.dataset = "food";
  JsonValue st = server.Handle(status.ToJson());
  ASSERT_TRUE(st.GetBool("ok"));
  EXPECT_TRUE(st.GetBool("warm"));
  EXPECT_TRUE(st.GetBool("has_run"));

  Request drop;
  drop.op = Op::kDropDataset;
  drop.tenant = "acme";
  drop.dataset = "food";
  ASSERT_TRUE(server.Handle(drop.ToJson()).GetBool("ok"));
  JsonValue gone = server.Handle(CleanFrame("acme", "food"));
  EXPECT_FALSE(gone.GetBool("ok"));
  EXPECT_EQ(gone.GetString("error"), "not_found");
}

TEST(ServeServer, TenantsAreIsolated) {
  CleaningServer server(FastServerOptions());
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("globex", "food", payload)).GetBool("ok"));

  // Both tenants clean "their" food dataset; identical registration bytes
  // mean identical repairs, but through fully separate working state.
  JsonValue a = server.Handle(CleanFrame("acme", "food"));
  JsonValue b = server.Handle(CleanFrame("globex", "food"));
  ASSERT_TRUE(a.GetBool("ok"));
  ASSERT_TRUE(b.GetBool("ok"));
  EXPECT_EQ(RepairsDump(a), RepairsDump(b));

  // Feedback by acme must not leak into globex's copy.
  Request feedback;
  feedback.op = Op::kFeedback;
  feedback.tenant = "acme";
  feedback.dataset = "food";
  feedback.cell_tid = 1;
  feedback.cell_attr = "City";
  feedback.cell_value = "Springfield";
  ASSERT_TRUE(server.Handle(feedback.ToJson()).GetBool("ok"));
  JsonValue b2 = server.Handle(CleanFrame("globex", "food"));
  ASSERT_TRUE(b2.GetBool("ok"));
  EXPECT_EQ(RepairsDump(b2), RepairsDump(b));
}

TEST(ServeServer, OverloadedTenantDoesNotPoisonSiblings) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  CleaningServer server(options);
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("globex", "food", payload)).GetBool("ok"));

  // Saturate acme's quota from the outside, as a stuck in-flight request
  // would, then watch its next request bounce while globex sails through.
  auto held = server.admission().Admit("acme");
  ASSERT_TRUE(held.ok());

  JsonValue shed = server.Handle(CleanFrame("acme", "food"));
  EXPECT_FALSE(shed.GetBool("ok"));
  EXPECT_EQ(shed.GetString("error"), "overloaded");

  JsonValue fine = server.Handle(CleanFrame("globex", "food"));
  EXPECT_TRUE(fine.GetBool("ok")) << fine.Dump();

  held.value().Release();
  JsonValue recovered = server.Handle(CleanFrame("acme", "food"));
  EXPECT_TRUE(recovered.GetBool("ok")) << recovered.Dump();
}

TEST(ServeServer, DrainRejectsNewWorkAsDraining) {
  CleaningServer server(FastServerOptions());  // No state dir.
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
  ASSERT_TRUE(server.Drain().ok());

  JsonValue shed = server.Handle(CleanFrame("acme", "food"));
  EXPECT_FALSE(shed.GetBool("ok"));
  EXPECT_EQ(shed.GetString("error"), "draining");
  JsonValue reg = server.Handle(RegisterFrame("acme", "more", payload));
  EXPECT_FALSE(reg.GetBool("ok"));
  EXPECT_EQ(reg.GetString("error"), "draining");
}

TEST(ServeServer, DrainThenRestartRestoresWarmStateBitIdentically) {
  ServerOptions options = FastServerOptions();
  options.state_directory = FreshDir("drain");
  std::remove((options.state_directory + "/manifest.json").c_str());
  Payload payload = MakePayload(0);

  std::string warm_repairs;
  {
    CleaningServer first(options);
    ASSERT_TRUE(
        first.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
    JsonValue cold = first.Handle(CleanFrame("acme", "food"));
    ASSERT_TRUE(cold.GetBool("ok")) << cold.Dump();
    JsonValue warm = first.Handle(CleanFrame("acme", "food"));
    ASSERT_TRUE(warm.GetBool("ok"));
    ASSERT_TRUE(warm.GetBool("warm"));
    warm_repairs = RepairsDump(warm);
    ASSERT_TRUE(first.Drain().ok());
  }

  CleaningServer second(options);
  ASSERT_TRUE(second.RestoreState().ok());

  // The catalog and the parked session both came back.
  Request status;
  status.op = Op::kExplainStatus;
  status.tenant = "acme";
  status.dataset = "food";
  JsonValue st = second.Handle(status.ToJson());
  ASSERT_TRUE(st.GetBool("ok")) << st.Dump();
  EXPECT_TRUE(st.GetBool("warm"));
  EXPECT_TRUE(st.GetBool("has_run"));

  JsonValue resumed = second.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(resumed.GetBool("ok")) << resumed.Dump();
  EXPECT_TRUE(resumed.GetBool("warm"));
  EXPECT_EQ(RepairsDump(resumed), warm_repairs);
}

TEST(ServeServer, LruEvictionSpillsAndRestoresThroughTheWire) {
  ServerOptions options = FastServerOptions();
  options.session_cache_capacity = 1;
  options.spill_directory = FreshDir("spill");
  CleaningServer server(options);
  Payload payload_a = MakePayload(0, 80);
  Payload payload_b = MakePayload(1, 80);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "a", payload_a)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "b", payload_b)).GetBool("ok"));

  JsonValue first_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(first_a.GetBool("ok"));
  // Cleaning b evicts a's parked session into a spill snapshot.
  ASSERT_TRUE(server.Handle(CleanFrame("acme", "b")).GetBool("ok"));
  EXPECT_TRUE(server.engine().HasSpilledSession("acme/a"));

  JsonValue again_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(again_a.GetBool("ok"));
  EXPECT_FALSE(again_a.GetBool("warm"));
  EXPECT_TRUE(again_a.GetBool("restored_from_spill"));
  EXPECT_EQ(RepairsDump(again_a), RepairsDump(first_a));
}

// --- Server (TCP) ------------------------------------------------------------

TEST(ServeServer, TcpRoundTripMatchesInProcessDispatch) {
  CleaningServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  Payload payload = MakePayload(0);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  Request reg;
  reg.op = Op::kRegisterDataset;
  reg.tenant = "acme";
  reg.dataset = "food";
  reg.csv_text = payload.csv;
  reg.dc_text = payload.dcs;
  auto reg_resp = client.value().Call(reg);
  ASSERT_TRUE(reg_resp.ok()) << reg_resp.status();
  EXPECT_TRUE(reg_resp.value().GetBool("ok")) << reg_resp.value().Dump();

  Request clean;
  clean.op = Op::kClean;
  clean.tenant = "acme";
  clean.dataset = "food";
  auto tcp_clean = client.value().Call(clean);
  ASSERT_TRUE(tcp_clean.ok()) << tcp_clean.status();
  ASSERT_TRUE(tcp_clean.value().GetBool("ok")) << tcp_clean.value().Dump();

  // The socket path and Handle() dispatch identically: the warm repeat
  // through Handle() returns the same repairs the TCP clean produced.
  JsonValue warm = server.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(warm.GetBool("ok"));
  EXPECT_EQ(RepairsDump(warm), RepairsDump(tcp_clean.value()));

  // An unknown op over the wire gets a clean protocol error, and the
  // connection keeps serving afterwards.
  JsonValue bogus = JsonValue::Object();
  bogus.Set("op", JsonValue::String("explode"));
  auto bad = client.value().CallRaw(bogus);
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_FALSE(bad.value().GetBool("ok"));
  EXPECT_EQ(bad.value().GetString("error"), "invalid_argument");

  Request list;
  list.op = Op::kListDatasets;
  auto listed = client.value().Call(list);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().Find("datasets")->size(), 1u);

  client.value().Close();
  server.Stop();
}

TEST(ServeServer, ConcurrentTcpClientsOverDistinctSlots) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 4;
  options.admission.global_inflight = 8;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Payload payload = MakePayload(0, 80);
  for (const char* tenant : {"t0", "t1", "t2", "t3"}) {
    ASSERT_TRUE(
        server.Handle(RegisterFrame(tenant, "food", payload)).GetBool("ok"));
  }

  std::vector<std::string> repairs(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect(server.port());
      ASSERT_TRUE(client.ok());
      Request clean;
      clean.op = Op::kClean;
      clean.tenant = "t" + std::to_string(t);
      clean.dataset = "food";
      auto resp = client.value().Call(clean);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp.value().GetBool("ok")) << resp.value().Dump();
      repairs[static_cast<size_t>(t)] = RepairsDump(resp.value());
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();

  // Same registration bytes + same config => all four tenants, cleaned
  // concurrently over the shared pool, repair identically.
  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(repairs[static_cast<size_t>(t)], repairs[0]);
  }
}

}  // namespace
}  // namespace holoclean
