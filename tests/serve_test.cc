// Tests for the serving tier: wire framing, request parsing and config
// overrides, the concurrent dataset registry, per-tenant admission
// control, the in-process and TCP request paths of CleaningServer, and
// the drain -> restart round trip (warm state survives a restart with
// bit-identical repairs).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <unistd.h>

#include <sys/socket.h>
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "holoclean/data/food.h"
#include "holoclean/serve/admission.h"
#include "holoclean/serve/client.h"
#include "holoclean/serve/protocol.h"
#include "holoclean/serve/queue.h"
#include "holoclean/serve/registry.h"
#include "holoclean/serve/server.h"
#include "holoclean/util/csv.h"
#include "holoclean/util/failpoint.h"

namespace holoclean {
namespace {

using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::CleaningServer;
using serve::Client;
using serve::DatasetRegistry;
using serve::Op;
using serve::Request;
using serve::ServerOptions;

/// Raw registration payloads for a small generated Food instance.
struct Payload {
  std::string csv;
  std::string dcs;
};

Payload MakePayload(size_t i, size_t rows = 120) {
  FoodOptions options;
  options.num_rows = rows;
  options.error_rate = 0.05 + 0.01 * static_cast<double>(i);
  options.seed = 9200 + i;
  GeneratedData data = MakeFood(options);
  Payload payload;
  payload.csv = WriteCsv(data.dataset.dirty().ToCsv());
  for (const DenialConstraint& dc : data.dcs) {
    payload.dcs += dc.ToString(data.dataset.dirty().schema()) + "\n";
  }
  return payload;
}

JsonValue RegisterFrame(const std::string& tenant, const std::string& dataset,
                        const Payload& payload) {
  Request req;
  req.op = Op::kRegisterDataset;
  req.tenant = tenant;
  req.dataset = dataset;
  req.csv_text = payload.csv;
  req.dc_text = payload.dcs;
  return req.ToJson();
}

JsonValue CleanFrame(const std::string& tenant, const std::string& dataset) {
  Request req;
  req.op = Op::kClean;
  req.tenant = tenant;
  req.dataset = dataset;
  return req.ToJson();
}

/// A fast pipeline config for serving tests.
HoloCleanConfig FastConfig() {
  HoloCleanConfig config;
  config.epochs = 5;
  config.gibbs_burn_in = 3;
  config.gibbs_samples = 10;
  return config;
}

ServerOptions FastServerOptions() {
  ServerOptions options;
  options.default_config = FastConfig();
  options.engine_threads = 2;
  return options;
}

/// A fresh empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "holoclean_serve_" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string RepairsDump(const JsonValue& response) {
  const JsonValue* report = response.Find("report");
  EXPECT_NE(report, nullptr);
  const JsonValue* repairs =
      report != nullptr ? report->Find("repairs") : nullptr;
  EXPECT_NE(repairs, nullptr);
  return repairs != nullptr ? repairs->Dump() : "";
}

// --- Protocol ----------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  JsonValue obj = JsonValue::Object();
  obj.Set("op", JsonValue::String("list_datasets"));
  obj.Set("n", JsonValue::Number(42));
  ASSERT_TRUE(serve::WriteFrame(fds[1], obj).ok());
  ::close(fds[1]);

  Result<JsonValue> read = serve::ReadFrame(fds[0]);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value().Dump(), obj.Dump());

  // The pipe is now at EOF: a clean close reads as kNotFound.
  Result<JsonValue> eof = serve::ReadFrame(fds[0]);
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  ::close(fds[0]);
}

TEST(ServeProtocol, HostileAndTruncatedFramesAreRejected) {
  {
    // Length prefix past the frame bound must be refused pre-allocation.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(fds[1], huge, 4), 4);
    ::close(fds[1]);
    Result<JsonValue> r = serve::ReadFrame(fds[0]);
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    ::close(fds[0]);
  }
  {
    // Connection dying mid-prefix.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], "\x00\x00", 2), 2);
    ::close(fds[1]);
    Result<JsonValue> r = serve::ReadFrame(fds[0]);
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    ::close(fds[0]);
  }
  {
    // Connection dying mid-payload.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    unsigned char prefix[4] = {0, 0, 0, 10};
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);
    ASSERT_EQ(::write(fds[1], "{\"a\"", 4), 4);
    ::close(fds[1]);
    Result<JsonValue> r = serve::ReadFrame(fds[0]);
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    ::close(fds[0]);
  }
}

TEST(ServeProtocol, RequestRoundTripsThroughJson) {
  Request req;
  req.op = Op::kFeedback;
  req.tenant = "acme";
  req.dataset = "food";
  req.cell_tid = 7;
  req.cell_attr = "City";
  req.cell_value = "Chicago";
  req.config_overrides.Set("epochs", JsonValue::Number(3));

  Result<Request> parsed = Request::FromJson(req.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().op, Op::kFeedback);
  EXPECT_EQ(parsed.value().tenant, "acme");
  EXPECT_EQ(parsed.value().dataset, "food");
  EXPECT_EQ(parsed.value().cell_tid, 7);
  EXPECT_EQ(parsed.value().cell_attr, "City");
  EXPECT_EQ(parsed.value().cell_value, "Chicago");
  EXPECT_EQ(parsed.value().config_overrides.GetInt("epochs"), 3);
}

TEST(ServeProtocol, MalformedRequestsAreRejected) {
  EXPECT_FALSE(Request::FromJson(JsonValue::Array()).ok());
  EXPECT_FALSE(Request::FromJson(JsonValue::Object()).ok());  // No op.

  JsonValue bad_op = JsonValue::Object();
  bad_op.Set("op", JsonValue::String("explode"));
  EXPECT_FALSE(Request::FromJson(bad_op).ok());

  JsonValue bad_cell = JsonValue::Object();
  bad_cell.Set("op", JsonValue::String("feedback"));
  bad_cell.Set("cell", JsonValue::String("not an object"));
  EXPECT_FALSE(Request::FromJson(bad_cell).ok());
}

TEST(ServeProtocol, ConfigOverridesApplyAndRejectUnknownKeys) {
  HoloCleanConfig config;
  JsonValue overrides = JsonValue::Object();
  overrides.Set("tau", JsonValue::Number(0.7));
  overrides.Set("epochs", JsonValue::Number(3));
  overrides.Set("compiled_kernel", JsonValue::Bool(false));
  overrides.Set("seed", JsonValue::Number(99));
  ASSERT_TRUE(serve::ApplyConfigOverrides(overrides, &config).ok());
  EXPECT_DOUBLE_EQ(config.tau, 0.7);
  EXPECT_EQ(config.epochs, 3);
  EXPECT_FALSE(config.compiled_kernel);
  EXPECT_EQ(config.seed, 99u);
  // Untouched knobs keep their defaults.
  EXPECT_EQ(config.gibbs_samples, HoloCleanConfig().gibbs_samples);

  JsonValue unknown = JsonValue::Object();
  unknown.Set("tao", JsonValue::Number(0.7));  // Typo must not pass silently.
  Status st = serve::ApplyConfigOverrides(unknown, &config);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  JsonValue wrong_type = JsonValue::Object();
  wrong_type.Set("epochs", JsonValue::String("three"));
  EXPECT_FALSE(serve::ApplyConfigOverrides(wrong_type, &config).ok());
}

TEST(ServeProtocol, ErrorCodesDistinguishOverloadFromDraining) {
  EXPECT_EQ(serve::ErrorCodeFor(Status::OutOfRange("overloaded: busy")),
            "overloaded");
  EXPECT_EQ(serve::ErrorCodeFor(Status::OutOfRange("draining: bye")),
            "draining");
  EXPECT_EQ(serve::ErrorCodeFor(Status::NotFound("x")), "not_found");
  EXPECT_EQ(serve::ErrorCodeFor(Status::AlreadyExists("x")), "already_exists");
  EXPECT_EQ(serve::ErrorCodeFor(Status::Internal("x")), "internal");
}

// --- Registry ----------------------------------------------------------------

TEST(ServeRegistry, RegisterFindDropLifecycle) {
  DatasetRegistry registry;
  Payload payload = MakePayload(0);

  ASSERT_TRUE(registry.Register("acme", "food", payload.csv, payload.dcs).ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Register("acme", "food", payload.csv, payload.dcs).code(),
            StatusCode::kAlreadyExists);

  auto found = registry.Find("acme", "food");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value()->base->num_rows(), 120u);
  EXPECT_FALSE(found.value()->dcs->empty());

  // Same dataset name under another tenant is a distinct entry.
  ASSERT_TRUE(
      registry.Register("globex", "food", payload.csv, payload.dcs).ok());
  EXPECT_EQ(registry.size(), 2u);

  ASSERT_TRUE(registry.Drop("acme", "food").ok());
  EXPECT_EQ(registry.Drop("acme", "food").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Find("acme", "food").status().code(),
            StatusCode::kNotFound);
  // The handed-out entry stays alive for holders.
  EXPECT_EQ(found.value()->base->num_rows(), 120u);
}

TEST(ServeRegistry, RejectsBadNamesAndPayloads) {
  DatasetRegistry registry;
  Payload payload = MakePayload(0);
  EXPECT_FALSE(registry.Register("", "food", payload.csv, payload.dcs).ok());
  EXPECT_FALSE(
      registry.Register("a/b", "food", payload.csv, payload.dcs).ok());
  EXPECT_FALSE(
      registry.Register("acme", "fo od", payload.csv, payload.dcs).ok());
  EXPECT_FALSE(registry.Register("acme", "food", "", payload.dcs).ok());
  EXPECT_FALSE(registry.Register("acme", "food", payload.csv, "").ok());
  EXPECT_FALSE(
      registry.Register("acme", "food", "not,a\nvalid", payload.dcs).ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ServeRegistry, ConcurrentRegisterDropRacesStayConsistent) {
  DatasetRegistry registry;
  Payload payload = MakePayload(0, 40);
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;

  // Each thread hammers its own name while everyone also races for one
  // contended name; listers iterate concurrently.
  std::atomic<int> contended_wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string mine = "ds" + std::to_string(t);
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_TRUE(
            registry.Register("acme", mine, payload.csv, payload.dcs).ok());
        auto found = registry.Find("acme", mine);
        ASSERT_TRUE(found.ok());
        EXPECT_EQ(found.value()->base->num_rows(), 40u);
        if (registry.Register("acme", "contended", payload.csv, payload.dcs)
                .ok()) {
          contended_wins.fetch_add(1);
          EXPECT_TRUE(registry.Drop("acme", "contended").ok());
        }
        for (const auto& entry : registry.List()) {
          EXPECT_FALSE(entry->dataset.empty());
        }
        ASSERT_TRUE(registry.Drop("acme", mine).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_GT(contended_wins.load(), 0);
}

// --- Admission ---------------------------------------------------------------

TEST(ServeAdmission, PerTenantQuotaIsolatesTenants) {
  AdmissionOptions options;
  options.per_tenant_inflight = 2;
  options.global_inflight = 8;
  AdmissionController admission(options);

  auto a1 = admission.Admit("acme");
  auto a2 = admission.Admit("acme");
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());

  // Tenant quota exhausted: acme bounces, globex keeps full service.
  auto a3 = admission.Admit("acme");
  EXPECT_EQ(a3.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(serve::ErrorCodeFor(a3.status()), "overloaded");
  auto b1 = admission.Admit("globex");
  EXPECT_TRUE(b1.ok());

  // Releasing a slot re-admits the tenant (RAII ticket).
  a1.value().Release();
  EXPECT_TRUE(admission.Admit("acme").ok());
  EXPECT_EQ(admission.inflight("globex"), 1u);
}

TEST(ServeAdmission, GlobalBoundShedsEveryone) {
  AdmissionOptions options;
  options.per_tenant_inflight = 8;
  options.global_inflight = 3;
  AdmissionController admission(options);

  std::vector<AdmissionController::Ticket> held;
  for (int i = 0; i < 3; ++i) {
    auto t = admission.Admit("tenant" + std::to_string(i));
    ASSERT_TRUE(t.ok());
    held.push_back(std::move(t).value());
  }
  EXPECT_EQ(admission.total_inflight(), 3u);
  EXPECT_EQ(admission.Admit("anyone").status().code(),
            StatusCode::kOutOfRange);
  held.clear();  // RAII release.
  EXPECT_EQ(admission.total_inflight(), 0u);
  EXPECT_TRUE(admission.Admit("anyone").ok());
}

// --- Server (in-process) -----------------------------------------------------

TEST(ServeServer, LifecycleAndWarmRepeatIsBitIdentical) {
  CleaningServer server(FastServerOptions());
  Payload payload = MakePayload(0);

  JsonValue reg = server.Handle(RegisterFrame("acme", "food", payload));
  ASSERT_TRUE(reg.GetBool("ok")) << reg.Dump();
  EXPECT_EQ(reg.GetInt("rows"), 120);

  // Registering the same name again fails cleanly.
  JsonValue dup = server.Handle(RegisterFrame("acme", "food", payload));
  EXPECT_FALSE(dup.GetBool("ok"));
  EXPECT_EQ(dup.GetString("error"), "already_exists");

  JsonValue cold = server.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(cold.GetBool("ok")) << cold.Dump();
  EXPECT_FALSE(cold.GetBool("warm"));
  ASSERT_GT(RepairsDump(cold).size(), 2u);

  JsonValue warm = server.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(warm.GetBool("ok")) << warm.Dump();
  EXPECT_TRUE(warm.GetBool("warm"));
  EXPECT_EQ(RepairsDump(warm), RepairsDump(cold));

  // Feedback pins a cell and re-cleans incrementally.
  Request feedback;
  feedback.op = Op::kFeedback;
  feedback.tenant = "acme";
  feedback.dataset = "food";
  feedback.cell_tid = 0;
  feedback.cell_attr = "City";
  feedback.cell_value = "Chicago";
  JsonValue fb = server.Handle(feedback.ToJson());
  ASSERT_TRUE(fb.GetBool("ok")) << fb.Dump();

  Request status;
  status.op = Op::kExplainStatus;
  status.tenant = "acme";
  status.dataset = "food";
  JsonValue st = server.Handle(status.ToJson());
  ASSERT_TRUE(st.GetBool("ok"));
  EXPECT_TRUE(st.GetBool("warm"));
  EXPECT_TRUE(st.GetBool("has_run"));

  Request drop;
  drop.op = Op::kDropDataset;
  drop.tenant = "acme";
  drop.dataset = "food";
  ASSERT_TRUE(server.Handle(drop.ToJson()).GetBool("ok"));
  JsonValue gone = server.Handle(CleanFrame("acme", "food"));
  EXPECT_FALSE(gone.GetBool("ok"));
  EXPECT_EQ(gone.GetString("error"), "not_found");
}

TEST(ServeServer, TenantsAreIsolated) {
  CleaningServer server(FastServerOptions());
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("globex", "food", payload)).GetBool("ok"));

  // Both tenants clean "their" food dataset; identical registration bytes
  // mean identical repairs, but through fully separate working state.
  JsonValue a = server.Handle(CleanFrame("acme", "food"));
  JsonValue b = server.Handle(CleanFrame("globex", "food"));
  ASSERT_TRUE(a.GetBool("ok"));
  ASSERT_TRUE(b.GetBool("ok"));
  EXPECT_EQ(RepairsDump(a), RepairsDump(b));

  // Feedback by acme must not leak into globex's copy.
  Request feedback;
  feedback.op = Op::kFeedback;
  feedback.tenant = "acme";
  feedback.dataset = "food";
  feedback.cell_tid = 1;
  feedback.cell_attr = "City";
  feedback.cell_value = "Springfield";
  ASSERT_TRUE(server.Handle(feedback.ToJson()).GetBool("ok"));
  JsonValue b2 = server.Handle(CleanFrame("globex", "food"));
  ASSERT_TRUE(b2.GetBool("ok"));
  EXPECT_EQ(RepairsDump(b2), RepairsDump(b));
}

TEST(ServeServer, OverloadedTenantDoesNotPoisonSiblings) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  // Reject-only admission: this test pins the immediate-`overloaded`
  // contract that queue.max_depth = 0 preserves (a queued server would
  // park the request instead — covered by the queue tests).
  options.queue.max_depth = 0;
  CleaningServer server(options);
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("globex", "food", payload)).GetBool("ok"));

  // Saturate acme's quota from the outside, as a stuck in-flight request
  // would, then watch its next request bounce while globex sails through.
  auto held = server.admission().Admit("acme");
  ASSERT_TRUE(held.ok());

  JsonValue shed = server.Handle(CleanFrame("acme", "food"));
  EXPECT_FALSE(shed.GetBool("ok"));
  EXPECT_EQ(shed.GetString("error"), "overloaded");

  JsonValue fine = server.Handle(CleanFrame("globex", "food"));
  EXPECT_TRUE(fine.GetBool("ok")) << fine.Dump();

  held.value().Release();
  JsonValue recovered = server.Handle(CleanFrame("acme", "food"));
  EXPECT_TRUE(recovered.GetBool("ok")) << recovered.Dump();
}

TEST(ServeServer, DrainRejectsNewWorkAsDraining) {
  CleaningServer server(FastServerOptions());  // No state dir.
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
  ASSERT_TRUE(server.Drain().ok());

  JsonValue shed = server.Handle(CleanFrame("acme", "food"));
  EXPECT_FALSE(shed.GetBool("ok"));
  EXPECT_EQ(shed.GetString("error"), "draining");
  JsonValue reg = server.Handle(RegisterFrame("acme", "more", payload));
  EXPECT_FALSE(reg.GetBool("ok"));
  EXPECT_EQ(reg.GetString("error"), "draining");
}

TEST(ServeServer, DrainThenRestartRestoresWarmStateBitIdentically) {
  ServerOptions options = FastServerOptions();
  options.state_directory = FreshDir("drain");
  std::remove((options.state_directory + "/manifest.json").c_str());
  Payload payload = MakePayload(0);

  std::string warm_repairs;
  {
    CleaningServer first(options);
    ASSERT_TRUE(
        first.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
    JsonValue cold = first.Handle(CleanFrame("acme", "food"));
    ASSERT_TRUE(cold.GetBool("ok")) << cold.Dump();
    JsonValue warm = first.Handle(CleanFrame("acme", "food"));
    ASSERT_TRUE(warm.GetBool("ok"));
    ASSERT_TRUE(warm.GetBool("warm"));
    warm_repairs = RepairsDump(warm);
    ASSERT_TRUE(first.Drain().ok());
  }

  CleaningServer second(options);
  ASSERT_TRUE(second.RestoreState().ok());

  // The catalog and the parked session both came back.
  Request status;
  status.op = Op::kExplainStatus;
  status.tenant = "acme";
  status.dataset = "food";
  JsonValue st = second.Handle(status.ToJson());
  ASSERT_TRUE(st.GetBool("ok")) << st.Dump();
  EXPECT_TRUE(st.GetBool("warm"));
  EXPECT_TRUE(st.GetBool("has_run"));

  JsonValue resumed = second.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(resumed.GetBool("ok")) << resumed.Dump();
  EXPECT_TRUE(resumed.GetBool("warm"));
  EXPECT_EQ(RepairsDump(resumed), warm_repairs);
}

TEST(ServeServer, LruEvictionSpillsAndRestoresThroughTheWire) {
  ServerOptions options = FastServerOptions();
  options.session_cache_capacity = 1;
  options.spill_directory = FreshDir("spill");
  CleaningServer server(options);
  Payload payload_a = MakePayload(0, 80);
  Payload payload_b = MakePayload(1, 80);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "a", payload_a)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "b", payload_b)).GetBool("ok"));

  JsonValue first_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(first_a.GetBool("ok"));
  // Cleaning b evicts a's parked session into a spill snapshot.
  ASSERT_TRUE(server.Handle(CleanFrame("acme", "b")).GetBool("ok"));
  EXPECT_TRUE(server.engine().HasSpilledSession("acme/a"));

  JsonValue again_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(again_a.GetBool("ok"));
  EXPECT_FALSE(again_a.GetBool("warm"));
  EXPECT_TRUE(again_a.GetBool("restored_from_spill"));
  EXPECT_EQ(RepairsDump(again_a), RepairsDump(first_a));
}

// --- Server (TCP) ------------------------------------------------------------

TEST(ServeServer, TcpRoundTripMatchesInProcessDispatch) {
  CleaningServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  Payload payload = MakePayload(0);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  Request reg;
  reg.op = Op::kRegisterDataset;
  reg.tenant = "acme";
  reg.dataset = "food";
  reg.csv_text = payload.csv;
  reg.dc_text = payload.dcs;
  auto reg_resp = client.value().Call(reg);
  ASSERT_TRUE(reg_resp.ok()) << reg_resp.status();
  EXPECT_TRUE(reg_resp.value().GetBool("ok")) << reg_resp.value().Dump();

  Request clean;
  clean.op = Op::kClean;
  clean.tenant = "acme";
  clean.dataset = "food";
  auto tcp_clean = client.value().Call(clean);
  ASSERT_TRUE(tcp_clean.ok()) << tcp_clean.status();
  ASSERT_TRUE(tcp_clean.value().GetBool("ok")) << tcp_clean.value().Dump();

  // The socket path and Handle() dispatch identically: the warm repeat
  // through Handle() returns the same repairs the TCP clean produced.
  JsonValue warm = server.Handle(CleanFrame("acme", "food"));
  ASSERT_TRUE(warm.GetBool("ok"));
  EXPECT_EQ(RepairsDump(warm), RepairsDump(tcp_clean.value()));

  // An unknown op over the wire gets a clean protocol error, and the
  // connection keeps serving afterwards.
  JsonValue bogus = JsonValue::Object();
  bogus.Set("op", JsonValue::String("explode"));
  auto bad = client.value().CallRaw(bogus);
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_FALSE(bad.value().GetBool("ok"));
  EXPECT_EQ(bad.value().GetString("error"), "invalid_argument");

  Request list;
  list.op = Op::kListDatasets;
  auto listed = client.value().Call(list);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().Find("datasets")->size(), 1u);

  client.value().Close();
  server.Stop();
}

TEST(ServeServer, ConcurrentTcpClientsOverDistinctSlots) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 4;
  options.admission.global_inflight = 8;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Payload payload = MakePayload(0, 80);
  for (const char* tenant : {"t0", "t1", "t2", "t3"}) {
    ASSERT_TRUE(
        server.Handle(RegisterFrame(tenant, "food", payload)).GetBool("ok"));
  }

  std::vector<std::string> repairs(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect(server.port());
      ASSERT_TRUE(client.ok());
      Request clean;
      clean.op = Op::kClean;
      clean.tenant = "t" + std::to_string(t);
      clean.dataset = "food";
      auto resp = client.value().Call(clean);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp.value().GetBool("ok")) << resp.value().Dump();
      repairs[static_cast<size_t>(t)] = RepairsDump(resp.value());
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();

  // Same registration bytes + same config => all four tenants, cleaned
  // concurrently over the shared pool, repair identically.
  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(repairs[static_cast<size_t>(t)], repairs[0]);
  }
}

// --- Robustness: deadlines, queueing, fault injection ------------------------

TEST(ServeProtocol, DeadlineAndAttemptFieldsRoundTrip) {
  Request req;
  req.op = Op::kClean;
  req.tenant = "acme";
  req.dataset = "food";
  req.deadline_ms = 2500;
  req.attempt = 2;
  auto parsed = Request::FromJson(req.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().deadline_ms, 2500);
  EXPECT_EQ(parsed.value().attempt, 2);

  // Negative deadlines are a client bug, not a default.
  JsonValue bad = CleanFrame("acme", "food");
  bad.Set("deadline_ms", JsonValue::Number(-5));
  EXPECT_FALSE(Request::FromJson(bad).ok());
}

TEST(ServeProtocol, LegacyRequestsWithoutDeadlineRoundTripUnchanged) {
  // A protocol-1 frame that predates deadline_ms/attempt must parse to
  // the defaults and re-serialize byte-identically — old clients see no
  // difference.
  JsonValue legacy = CleanFrame("acme", "food");
  auto parsed = Request::FromJson(legacy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().deadline_ms, 0);
  EXPECT_EQ(parsed.value().attempt, 0);
  EXPECT_EQ(parsed.value().ToJson().Dump(), legacy.Dump());
}

TEST(ServeProtocol, EintrAndShortReadsStillDeliverFramesIntact) {
  // Regression for the frame I/O audit: injected signal interruptions
  // plus a 3-byte syscall cap (forcing the short-read path on every
  // transfer) must not lose, duplicate, or reorder a single byte.
  ScopedFailpoints guard(
      "serve.frame.read_eintr=on:2/error;serve.frame.read_slice="
      "always/slice:3;serve.frame.write_eintr=on:1/error;"
      "serve.frame.write_slice=always/slice:3");
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  JsonValue obj = JsonValue::Object();
  obj.Set("op", JsonValue::String("list_datasets"));
  obj.Set("blob", JsonValue::String(std::string(300, 'x') + "end"));
  ASSERT_TRUE(serve::WriteFrame(fds[1], obj).ok());
  ::close(fds[1]);
  auto read = serve::ReadFrame(fds[0]);
  ::close(fds[0]);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value().Dump(), obj.Dump());
}

TEST(ServeServer, QueueParksOverloadedRequestUntilSlotFrees) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  CleaningServer server(options);
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));

  auto held = server.admission().Admit("acme");
  ASSERT_TRUE(held.ok());

  // With the quota saturated the request parks instead of bouncing; it
  // completes once the held ticket releases.
  JsonValue queued_resp;
  std::thread waiter([&] {
    Request req;
    req.op = Op::kClean;
    req.tenant = "acme";
    req.dataset = "food";
    req.deadline_ms = 10000;
    queued_resp = server.Handle(req.ToJson());
  });
  while (server.queue().stats().depth == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Raw tickets bypass QueuedTicket, so hand the freed slot to the queue
  // the way the server's release path would.
  held.value().Release();
  server.queue().OnTicketReleased();
  waiter.join();
  EXPECT_TRUE(queued_resp.GetBool("ok")) << queued_resp.Dump();
  EXPECT_GE(server.queue().stats().granted_after_wait, 1u);
}

TEST(ServeServer, DeadlineExceededWhileQueued) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  CleaningServer server(options);
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));

  auto held = server.admission().Admit("acme");
  ASSERT_TRUE(held.ok());

  Request req;
  req.op = Op::kClean;
  req.tenant = "acme";
  req.dataset = "food";
  req.deadline_ms = 60;  // Expires while parked — nobody releases.
  JsonValue resp = server.Handle(req.ToJson());
  EXPECT_FALSE(resp.GetBool("ok"));
  EXPECT_EQ(resp.GetString("error"), "deadline_exceeded") << resp.Dump();
  EXPECT_GE(server.queue().stats().expired_in_queue, 1u);
  held.value().Release();
}

TEST(ServeServer, DeadlineExceededAfterDequeueBeforeExecution) {
  // The serve.queue.dispatch delay models a slow step between the queue
  // grant and job submission; the post-dequeue re-check must catch the
  // deadline that passed in between — deterministically, no contention
  // required.
  ScopedFailpoints guard("serve.queue.dispatch=always/delay:120");
  CleaningServer server(FastServerOptions());
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));

  Request req;
  req.op = Op::kClean;
  req.tenant = "acme";
  req.dataset = "food";
  req.deadline_ms = 50;
  JsonValue resp = server.Handle(req.ToJson());
  EXPECT_FALSE(resp.GetBool("ok"));
  EXPECT_EQ(resp.GetString("error"), "deadline_exceeded") << resp.Dump();
  EXPECT_NE(resp.GetString("message").find("after dequeue"),
            std::string::npos)
      << resp.Dump();
}

TEST(ServeServer, FullQueueFallsBackToOverloaded) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  options.queue.max_depth = 1;
  CleaningServer server(options);
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));

  auto held = server.admission().Admit("acme");
  ASSERT_TRUE(held.ok());

  JsonValue parked_resp;
  std::thread parked([&] {
    Request req;
    req.op = Op::kClean;
    req.tenant = "acme";
    req.dataset = "food";
    req.deadline_ms = 10000;
    parked_resp = server.Handle(req.ToJson());
  });
  while (server.queue().stats().depth == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Queue full is a capacity condition, not a deadline one: today's
  // `overloaded` contract holds.
  Request req;
  req.op = Op::kClean;
  req.tenant = "acme";
  req.dataset = "food";
  req.deadline_ms = 10000;
  JsonValue resp = server.Handle(req.ToJson());
  EXPECT_FALSE(resp.GetBool("ok"));
  EXPECT_EQ(resp.GetString("error"), "overloaded") << resp.Dump();
  EXPECT_NE(resp.GetString("message").find("queue full"), std::string::npos);

  held.value().Release();
  server.queue().OnTicketReleased();
  parked.join();
  EXPECT_TRUE(parked_resp.GetBool("ok")) << parked_resp.Dump();
}

TEST(ServeServer, InjectedSpillSaveFailureFallsBackToColdRecompute) {
  ServerOptions options = FastServerOptions();
  options.session_cache_capacity = 1;
  options.spill_directory = FreshDir("failspill");
  CleaningServer server(options);
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "a", payload)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "b", payload)).GetBool("ok"));

  JsonValue first_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(first_a.GetBool("ok")) << first_a.Dump();

  // Cleaning b evicts a's parked session; the injected save failure
  // makes the spill vanish instead of persisting. Graceful degradation:
  // nothing crashes, a's warmth is lost, correctness is not.
  {
    ScopedFailpoints guard("engine.spill.save=always/error");
    ASSERT_TRUE(server.Handle(CleanFrame("acme", "b")).GetBool("ok"));
  }
  EXPECT_FALSE(server.engine().HasSpilledSession("acme/a"));

  JsonValue again_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(again_a.GetBool("ok")) << again_a.Dump();
  EXPECT_FALSE(again_a.GetBool("warm"));
  EXPECT_FALSE(again_a.GetBool("restored_from_spill"));
  EXPECT_EQ(RepairsDump(again_a), RepairsDump(first_a));
}

TEST(ServeServer, InjectedSpillRestoreFailureFallsBackToColdRecompute) {
  ServerOptions options = FastServerOptions();
  options.session_cache_capacity = 1;
  options.spill_directory = FreshDir("failrestore");
  CleaningServer server(options);
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "a", payload)).GetBool("ok"));
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "b", payload)).GetBool("ok"));

  JsonValue first_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(first_a.GetBool("ok")) << first_a.Dump();
  ASSERT_TRUE(server.Handle(CleanFrame("acme", "b")).GetBool("ok"));
  ASSERT_TRUE(server.engine().HasSpilledSession("acme/a"));

  // The spill snapshot exists but its restore fails (as a corrupt or
  // truncated file would): the request recomputes cold and succeeds.
  ScopedFailpoints guard("engine.spill.restore=always/error");
  JsonValue again_a = server.Handle(CleanFrame("acme", "a"));
  ASSERT_TRUE(again_a.GetBool("ok")) << again_a.Dump();
  EXPECT_EQ(RepairsDump(again_a), RepairsDump(first_a));
}

TEST(ServeServer, MidFrameCorruptionClosesOnlyThatConnection) {
  CleaningServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));

  auto victim = Client::Connect(server.port());
  ASSERT_TRUE(victim.ok());
  auto bystander = Client::Connect(server.port());
  ASSERT_TRUE(bystander.ok());

  {
    // The corruption fires on the next frame written in this process —
    // the victim's request below. The server reads a full frame of
    // garbage, answers with a protocol error, and closes that
    // connection only.
    ScopedFailpoints guard("serve.frame.corrupt_write=on:1/error");
    Request list;
    list.op = Op::kListDatasets;
    auto corrupted = victim.value().Call(list);
    if (corrupted.ok()) {
      EXPECT_FALSE(corrupted.value().GetBool("ok"));
      EXPECT_EQ(corrupted.value().GetString("error"), "invalid_argument")
          << corrupted.value().Dump();
    }
    // Either way the stream is dead now.
    auto after = victim.value().Call(list);
    EXPECT_FALSE(after.ok() && after.value().GetBool("ok"));
  }

  // The bystander's connection and the server itself are unaffected.
  Request clean;
  clean.op = Op::kClean;
  clean.tenant = "acme";
  clean.dataset = "food";
  auto fine = bystander.value().Call(clean);
  ASSERT_TRUE(fine.ok()) << fine.status();
  EXPECT_TRUE(fine.value().GetBool("ok")) << fine.value().Dump();
  server.Stop();
}

TEST(ServeServer, SlowLorisConnectionIsTimedOutAndClosed) {
  ServerOptions options = FastServerOptions();
  options.socket_timeout_ms = 100;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // A hostile client sends half a length prefix and stalls. The read
  // timeout must reclaim the connection thread: the server sends a
  // best-effort timeout error frame and closes.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  char half[2] = {0, 0};
  ASSERT_EQ(::send(fd, half, 2, 0), 2);

  // Drain whatever the server sends until it closes; this must complete
  // quickly (the 100ms timeout), not hang for the test's lifetime.
  auto start = std::chrono::steady_clock::now();
  std::string received;
  char buf[512];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
  }
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  ::close(fd);
  EXPECT_LT(elapsed_ms, 5000);
  EXPECT_NE(received.find("timeout"), std::string::npos) << received;

  // The listener survives slow-loris peers: a well-behaved request on a
  // fresh connection still succeeds.
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  Request list;
  list.op = Op::kListDatasets;
  auto resp = client.value().Call(list);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp.value().GetBool("ok"));

  // explain_status surfaces the timeout in the server counters.
  Request status;
  status.op = Op::kExplainStatus;
  auto st = client.value().Call(status);
  ASSERT_TRUE(st.ok());
  const JsonValue* srv = st.value().Find("server");
  ASSERT_NE(srv, nullptr) << st.value().Dump();
  EXPECT_GE(srv->GetInt("socket_timeouts", 0), 1);
  server.Stop();
}

TEST(ServeServer, DrainUnderLoadAnswersEveryRequest) {
  // Drain with one slow request in flight and more parked in the queue:
  // the in-flight one completes, every queued one gets a `draining`
  // response, nothing hangs, and no connection dies unanswered.
  ScopedFailpoints guard("engine.job.run=always/delay:250");
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  options.admission.global_inflight = 1;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));

  constexpr int kClients = 3;
  std::vector<std::thread> threads;
  std::vector<JsonValue> responses(kClients);
  std::vector<Status> transports(kClients, Status::OK());
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = Client::Connect(server.port());
      ASSERT_TRUE(client.ok());
      Request req;
      req.op = Op::kClean;
      req.tenant = "acme";
      req.dataset = "food";
      req.deadline_ms = 20000;
      auto resp = client.value().Call(req);
      if (resp.ok()) {
        responses[static_cast<size_t>(i)] = resp.value();
      } else {
        transports[static_cast<size_t>(i)] = resp.status();
      }
    });
  }
  // Let one request reach the engine (delayed there) and the rest park.
  while (server.queue().stats().depth < kClients - 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.Drain().ok());
  for (std::thread& t : threads) t.join();

  int ok_count = 0, draining_count = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(transports[static_cast<size_t>(i)].ok())
        << "client " << i << " got no response: "
        << transports[static_cast<size_t>(i)].ToString();
    const JsonValue& resp = responses[static_cast<size_t>(i)];
    if (resp.GetBool("ok")) {
      ok_count++;
    } else {
      EXPECT_EQ(resp.GetString("error"), "draining") << resp.Dump();
      draining_count++;
    }
  }
  EXPECT_EQ(ok_count + draining_count, kClients);
  EXPECT_GE(ok_count, 1);  // The in-flight request finished its work.
}

TEST(ServeClient, RetriesOverloadedWithBackoffUntilSlotFrees) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  options.queue.max_depth = 0;  // Reject-only: rejections are immediate.
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));

  auto held = server.admission().Admit("acme");
  ASSERT_TRUE(held.ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    held.value().Release();
  });

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  Request req;
  req.op = Op::kClean;
  req.tenant = "acme";
  req.dataset = "food";
  serve::RetryOptions retry;
  retry.max_attempts = 8;
  retry.initial_backoff_ms = 40;
  retry.jitter_seed = 7;
  auto result = client.value().CallWithRetry(server.port(), req, retry);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result.value().response.GetBool("ok"))
      << result.value().response.Dump();
  EXPECT_GE(result.value().attempts, 2);
  EXPECT_GT(result.value().backoff_ms, 0);

  // The server counted the retried attempts via the wire's `attempt`.
  Request status;
  status.op = Op::kExplainStatus;
  auto st = client.value().Call(status);
  ASSERT_TRUE(st.ok());
  const JsonValue* srv = st.value().Find("server");
  ASSERT_NE(srv, nullptr);
  EXPECT_GE(srv->GetInt("retried_requests", 0), 1);
  server.Stop();
}

TEST(ServeClient, DoesNotRetryNonIdempotentSafeOutcomes) {
  CleaningServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  Request req;
  req.op = Op::kClean;
  req.tenant = "acme";
  req.dataset = "nope";  // not_found: a real answer, not a transient.
  serve::RetryOptions retry;
  retry.max_attempts = 5;
  auto result = client.value().CallWithRetry(server.port(), req, retry);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().attempts, 1);
  EXPECT_FALSE(result.value().response.GetBool("ok"));
  EXPECT_EQ(result.value().response.GetString("error"), "not_found");
  server.Stop();
}

TEST(ServeClient, RetryHonorsOverallDeadline) {
  ServerOptions options = FastServerOptions();
  options.admission.per_tenant_inflight = 1;
  options.queue.max_depth = 0;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Payload payload = MakePayload(0);
  ASSERT_TRUE(
      server.Handle(RegisterFrame("acme", "food", payload)).GetBool("ok"));
  auto held = server.admission().Admit("acme");  // Never released.
  ASSERT_TRUE(held.ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  Request req;
  req.op = Op::kClean;
  req.tenant = "acme";
  req.dataset = "food";
  serve::RetryOptions retry;
  retry.max_attempts = 100;
  retry.initial_backoff_ms = 30;
  retry.overall_deadline_ms = 250;
  auto start = std::chrono::steady_clock::now();
  auto result = client.value().CallWithRetry(server.port(), req, retry);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_FALSE(result.ok());  // Out of budget, not out of attempts.
  EXPECT_LT(elapsed_ms, 2000);
  held.value().Release();
  server.Stop();
}

TEST(ServeServer, ExplainStatusReportsServerCountersGlobally) {
  CleaningServer server(FastServerOptions());
  // Provoke one counted error.
  JsonValue missing = server.Handle(CleanFrame("acme", "nope"));
  EXPECT_FALSE(missing.GetBool("ok"));

  // Global status needs no (tenant, dataset) target.
  Request status;
  status.op = Op::kExplainStatus;
  JsonValue resp = server.Handle(status.ToJson());
  ASSERT_TRUE(resp.GetBool("ok")) << resp.Dump();
  const JsonValue* srv = resp.Find("server");
  ASSERT_NE(srv, nullptr);
  EXPECT_GE(srv->GetInt("requests_total", 0), 1);
  const JsonValue* errors = srv->Find("errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_GE(errors->GetInt("not_found", 0), 1) << resp.Dump();
  const JsonValue* queue = srv->Find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->GetInt("depth", -1), 0);
}

}  // namespace
}  // namespace holoclean
