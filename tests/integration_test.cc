// End-to-end integration tests: the full pipeline against the generated
// paper datasets, the baselines beside it, and the qualitative claims of
// the paper's evaluation (who wins, in which direction) as assertions.

#include <gtest/gtest.h>

#include "holoclean/baselines/holistic.h"
#include "holoclean/baselines/katara.h"
#include "holoclean/baselines/scare.h"
#include "holoclean/core/calibration.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/flights.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/data/physicians.h"

#include "session_helpers.h"

namespace holoclean {
namespace {

// Reduced sizes keep the suite fast; the bench binaries run full scale.

TEST(Integration, HospitalHoloCleanHighPrecisionGoodRecall) {
  GeneratedData data = MakeHospital({600, 0.05, 51});
  HoloCleanConfig config;
  config.tau = 0.5;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  EvalResult e = EvaluateRepairs(data.dataset, report.value().repairs);
  EXPECT_GT(e.precision, 0.9);
  EXPECT_GT(e.recall, 0.55);
  EXPECT_GT(e.f1, 0.7);
}

TEST(Integration, HospitalBeatsAllBaselines) {
  GeneratedData data = MakeHospital({600, 0.05, 52});
  HoloCleanConfig config;
  config.tau = 0.5;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  double holo = EvaluateRepairs(data.dataset, report.value().repairs).f1;
  double holistic =
      EvaluateRepairs(data.dataset, Holistic().Run(data.dataset, data.dcs)).f1;
  double katara =
      EvaluateRepairs(data.dataset,
                      Katara().Run(&data.dataset, data.dicts, data.mds))
          .f1;
  double scare = EvaluateRepairs(data.dataset, Scare().Run(data.dataset)).f1;
  EXPECT_GT(holo, holistic);
  EXPECT_GT(holo, katara);
  EXPECT_GT(holo, scare);
}

TEST(Integration, FlightsTrustBeatsMinimality) {
  FlightsOptions options;
  options.num_rows = 1200;
  GeneratedData data = MakeFlights(options);
  HoloCleanConfig config;
  config.tau = 0.3;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  EvalResult holo = EvaluateRepairs(data.dataset, report.value().repairs);
  EvalResult holistic =
      EvaluateRepairs(data.dataset, Holistic().Run(data.dataset, data.dcs));
  // The paper's headline on Flights: constraints + minimality alone fail
  // badly; the unified model with source trust works.
  EXPECT_GT(holo.f1, 0.5);
  EXPECT_LT(holistic.f1, holo.f1 / 2.0);
}

TEST(Integration, FoodNonSystematicErrors) {
  GeneratedData data = MakeFood({1500, 0.06, 53});
  HoloCleanConfig config;
  config.tau = 0.5;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  EvalResult holo = EvaluateRepairs(data.dataset, report.value().repairs);
  EvalResult holistic =
      EvaluateRepairs(data.dataset, Holistic().Run(data.dataset, data.dcs));
  EXPECT_GT(holo.f1, 0.6);
  EXPECT_GT(holo.f1, holistic.f1);
  // KATARA: high precision, low recall (dictionary covers only geography).
  EvalResult katara = EvaluateRepairs(
      data.dataset, Katara().Run(&data.dataset, data.dicts, data.mds));
  EXPECT_GT(katara.precision, 0.7);
  EXPECT_LT(katara.recall, holo.recall);
}

TEST(Integration, PhysiciansSystematicErrors) {
  PhysiciansOptions options;
  options.num_rows = 3000;
  GeneratedData data = MakePhysicians(options);
  HoloCleanConfig config;
  config.tau = 0.7;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  EvalResult holo = EvaluateRepairs(data.dataset, report.value().repairs);
  EXPECT_GT(holo.precision, 0.9);
  EXPECT_GT(holo.f1, 0.65);
  // KATARA performs no repairs: zip format mismatch (paper Table 3 note).
  auto katara = Katara().Run(&data.dataset, data.dicts, data.mds);
  EXPECT_TRUE(katara.empty());
}

TEST(Integration, ExternalDictImprovesOrMatchesFood) {
  GeneratedData without = MakeFood({1500, 0.06, 54});
  GeneratedData with = MakeFood({1500, 0.06, 54});
  HoloCleanConfig config;
  config.tau = 0.5;
  auto base = CleanOnce(CleaningInputs::Borrowed(&without.dataset, &without.dcs), {config});
  auto dict = test_helpers::RunOnce(config, &with.dataset, with.dcs, &with.dicts,
                                    &with.mds);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(dict.ok());
  double f1_base =
      EvaluateRepairs(without.dataset, base.value().repairs).f1;
  double f1_dict = EvaluateRepairs(with.dataset, dict.value().repairs).f1;
  // §6.3.2: gains are small but not negative (limited coverage).
  EXPECT_GE(f1_dict, f1_base - 0.02);
}

TEST(Integration, CalibrationErrorRateDecreases) {
  GeneratedData data = MakeHospital({800, 0.08, 55});
  HoloCleanConfig config;
  config.tau = 0.3;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  auto buckets = ComputeCalibration(data.dataset, report.value().repairs);
  // Compare the aggregate low-confidence vs high-confidence error rate
  // (individual buckets may be sparse).
  size_t low_total = buckets[0].total + buckets[1].total;
  size_t low_wrong = buckets[0].wrong + buckets[1].wrong;
  size_t high_total = buckets[3].total + buckets[4].total;
  size_t high_wrong = buckets[3].wrong + buckets[4].wrong;
  ASSERT_GT(high_total, 0u);
  double high_rate = static_cast<double>(high_wrong) / high_total;
  if (low_total > 0) {
    double low_rate = static_cast<double>(low_wrong) / low_total;
    EXPECT_GE(low_rate, high_rate - 0.05);
  }
  EXPECT_LT(high_rate, 0.2);
}

TEST(Integration, PartitioningPreservesQuality) {
  // §5.1.2: partitioning loses at most a few points of F1.
  GeneratedData a = MakeFood({1200, 0.06, 56});
  GeneratedData b = MakeFood({1200, 0.06, 56});
  HoloCleanConfig config;
  config.tau = 0.5;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = false;
  auto full = CleanOnce(CleaningInputs::Borrowed(&a.dataset, &a.dcs), {config});
  config.partitioning = true;
  auto part = CleanOnce(CleaningInputs::Borrowed(&b.dataset, &b.dcs), {config});
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(part.ok());
  double f1_full = EvaluateRepairs(a.dataset, full.value().repairs).f1;
  double f1_part = EvaluateRepairs(b.dataset, part.value().repairs).f1;
  EXPECT_GE(f1_part, f1_full - 0.08);
  EXPECT_LE(part.value().stats.num_dc_factors,
            full.value().stats.num_dc_factors);
}

TEST(Integration, RelaxedModelMatchesFactorModelQuality) {
  // §5.2 / §6.3.1: the relaxation achieves comparable repair quality.
  GeneratedData a = MakeHospital({500, 0.05, 57});
  GeneratedData b = MakeHospital({500, 0.05, 57});
  HoloCleanConfig config;
  config.tau = 0.5;
  config.dc_mode = DcMode::kFeatures;
  auto relaxed = CleanOnce(CleaningInputs::Borrowed(&a.dataset, &a.dcs), {config});
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  auto factors = CleanOnce(CleaningInputs::Borrowed(&b.dataset, &b.dcs), {config});
  ASSERT_TRUE(relaxed.ok());
  ASSERT_TRUE(factors.ok());
  double f1_relaxed =
      EvaluateRepairs(a.dataset, relaxed.value().repairs).f1;
  double f1_factors =
      EvaluateRepairs(b.dataset, factors.value().repairs).f1;
  EXPECT_NEAR(f1_relaxed, f1_factors, 0.1);
}

TEST(Integration, RepairedTableHasFewerViolations) {
  GeneratedData data = MakeHospital({500, 0.05, 58});
  ViolationDetector before(&data.dataset.dirty(), &data.dcs);
  size_t violations_before = before.Detect().size();
  HoloCleanConfig config;
  config.tau = 0.5;
  auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  ASSERT_TRUE(report.ok());
  Table repaired = data.dataset.dirty().Clone();
  report.value().Apply(&repaired);
  ViolationDetector after(&repaired, &data.dcs);
  EXPECT_LT(after.Detect().size(), violations_before / 2);
}

}  // namespace
}  // namespace holoclean
