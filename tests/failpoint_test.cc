// Tests for the failpoint framework (util/failpoint.h): profile grammar,
// trigger determinism (on:N, after:N, seeded probability, always), the
// action kinds, counter accounting, the disabled fast path, and the
// ScopedFailpoints RAII guard the rest of the test suite leans on.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "holoclean/util/failpoint.h"

namespace holoclean {
namespace {

TEST(Failpoint, InactiveByDefaultAndAfterClear) {
  Failpoints::Global().Clear();
  EXPECT_FALSE(Failpoints::Global().active());
  EXPECT_TRUE(HOLO_FAILPOINT("some.site").ok());
  EXPECT_FALSE(HOLO_FAILPOINT_EVAL("some.site").has_value());
  // An unarmed instance records nothing — the fast path never touches
  // per-site state.
  EXPECT_EQ(Failpoints::Global().stats("some.site").hits, 0u);
}

TEST(Failpoint, ParseErrorsRejectTheWholeProfile) {
  Failpoints& fp = Failpoints::Global();
  fp.Clear();
  EXPECT_FALSE(fp.Configure("no-equals-sign").ok());
  EXPECT_FALSE(fp.Configure("site=always").ok());          // Missing action.
  EXPECT_FALSE(fp.Configure("site=on:0/error").ok());      // 1-based.
  EXPECT_FALSE(fp.Configure("site=on:x/error").ok());
  EXPECT_FALSE(fp.Configure("site=maybe/error").ok());
  EXPECT_FALSE(fp.Configure("site=p:2.0:7/error").ok());   // P out of [0,1].
  EXPECT_FALSE(fp.Configure("site=p:0.5/error").ok());     // Missing seed.
  EXPECT_FALSE(fp.Configure("site=always/explode").ok());
  EXPECT_FALSE(fp.Configure("site=always/slice:0").ok());
  // A bad entry anywhere leaves the whole profile unapplied.
  EXPECT_FALSE(fp.Configure("good=always/error;bad=nope").ok());
  EXPECT_FALSE(fp.active());
  EXPECT_TRUE(HOLO_FAILPOINT("good").ok());
}

TEST(Failpoint, OnNthFiresExactlyOnce) {
  ScopedFailpoints guard("site.a=on:3/error");
  EXPECT_TRUE(HOLO_FAILPOINT("site.a").ok());
  EXPECT_TRUE(HOLO_FAILPOINT("site.a").ok());
  EXPECT_FALSE(HOLO_FAILPOINT("site.a").ok());  // The 3rd hit.
  EXPECT_TRUE(HOLO_FAILPOINT("site.a").ok());
  Failpoints::SiteStats stats = Failpoints::Global().stats("site.a");
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST(Failpoint, AfterNFiresOnEveryLaterHit) {
  ScopedFailpoints guard("site.b=after:2/error");
  EXPECT_TRUE(HOLO_FAILPOINT("site.b").ok());
  EXPECT_TRUE(HOLO_FAILPOINT("site.b").ok());
  EXPECT_FALSE(HOLO_FAILPOINT("site.b").ok());
  EXPECT_FALSE(HOLO_FAILPOINT("site.b").ok());
  EXPECT_EQ(Failpoints::Global().stats("site.b").fires, 2u);
}

TEST(Failpoint, AlwaysFiresAndOtherSitesStayQuiet) {
  ScopedFailpoints guard("site.c=always/error");
  EXPECT_FALSE(HOLO_FAILPOINT("site.c").ok());
  EXPECT_FALSE(HOLO_FAILPOINT("site.c").ok());
  EXPECT_TRUE(HOLO_FAILPOINT("site.unrelated").ok());
  EXPECT_EQ(Failpoints::Global().stats("site.unrelated").fires, 0u);
}

TEST(Failpoint, SeededProbabilityIsDeterministic) {
  // The fire pattern is a pure function of (P, SEED, hit index): two
  // passes over the same profile reproduce the exact same pattern.
  std::vector<bool> first, second;
  for (std::vector<bool>* out : {&first, &second}) {
    ScopedFailpoints guard("site.p=p:0.4:1234/error");
    for (int i = 0; i < 64; ++i) {
      out->push_back(!HOLO_FAILPOINT("site.p").ok());
    }
  }
  EXPECT_EQ(first, second);
  // ~40% of 64 hits should fire; the exact count is pinned by the seed,
  // but assert loose bounds so an Rng change fails loudly, not flakily.
  size_t fires = 0;
  for (bool fired : first) fires += fired ? 1 : 0;
  EXPECT_GT(fires, 8u);
  EXPECT_LT(fires, 56u);
}

TEST(Failpoint, ErrorCodesMapToWireConventions) {
  ScopedFailpoints guard(
      "e.internal=always/error;e.parse=always/error:parse;"
      "e.nf=always/error:not_found;e.over=always/error:overloaded;"
      "e.drain=always/error:draining;e.dl=always/error:deadline");
  EXPECT_EQ(HOLO_FAILPOINT("e.internal").code(), StatusCode::kInternal);
  EXPECT_EQ(HOLO_FAILPOINT("e.parse").code(), StatusCode::kParseError);
  EXPECT_EQ(HOLO_FAILPOINT("e.nf").code(), StatusCode::kNotFound);
  Status over = HOLO_FAILPOINT("e.over");
  EXPECT_EQ(over.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(over.message().rfind("overloaded", 0), 0u);
  Status drain = HOLO_FAILPOINT("e.drain");
  EXPECT_EQ(drain.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(drain.message().rfind("draining", 0), 0u);
  Status dl = HOLO_FAILPOINT("e.dl");
  EXPECT_EQ(dl.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dl.message().rfind("deadline_exceeded", 0), 0u);
}

TEST(Failpoint, DelayActionSleepsThenProceeds) {
  ScopedFailpoints guard("site.d=always/delay:30");
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(HOLO_FAILPOINT("site.d").ok());  // Delay is not an error.
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 25);
  EXPECT_EQ(Failpoints::Global().stats("site.d").fires, 1u);
}

TEST(Failpoint, SliceActionReportsBytesThroughEval) {
  ScopedFailpoints guard("site.s=always/slice:3");
  auto fire = HOLO_FAILPOINT_EVAL("site.s");
  ASSERT_TRUE(fire.has_value());
  EXPECT_EQ(fire->action, Failpoints::Action::kSlice);
  EXPECT_EQ(fire->slice_bytes, 3u);
  // Through the Status-only macro a slice fire is a no-op, not an error.
  EXPECT_TRUE(HOLO_FAILPOINT("site.s").ok());
}

TEST(Failpoint, ReconfigureResetsCountersAtomically) {
  ScopedFailpoints guard("site.r=on:1/error");
  EXPECT_FALSE(HOLO_FAILPOINT("site.r").ok());
  ASSERT_TRUE(Failpoints::Global().Configure("site.r=on:1/error").ok());
  // Counters restarted: the first hit after reconfigure is hit #1 again.
  EXPECT_FALSE(HOLO_FAILPOINT("site.r").ok());
}

TEST(Failpoint, CountersAreThreadSafe) {
  ScopedFailpoints guard("site.mt=after:0/error");
  constexpr int kThreads = 8;
  constexpr int kHitsEach = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kHitsEach; ++i) {
        EXPECT_FALSE(HOLO_FAILPOINT("site.mt").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Failpoints::SiteStats stats = Failpoints::Global().stats("site.mt");
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads * kHitsEach));
  EXPECT_EQ(stats.fires, stats.hits);
}

TEST(Failpoint, AllStatsListsEveryArmedSite) {
  ScopedFailpoints guard("x.one=always/error;x.two=on:5/error");
  (void)HOLO_FAILPOINT("x.one");
  std::vector<Failpoints::SiteStats> all = Failpoints::Global().AllStats();
  ASSERT_EQ(all.size(), 2u);
  bool saw_one = false, saw_two = false;
  for (const auto& s : all) {
    if (s.site == "x.one") saw_one = s.hits == 1 && s.fires == 1;
    if (s.site == "x.two") saw_two = s.hits == 0 && s.fires == 0;
  }
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_two);
}

}  // namespace
}  // namespace holoclean
