// Differential tests for the compiled inference kernel: CompiledGraph
// scores, learned weights, marginals, and sampled repairs must be
// bit-identical to the reference FactorGraph path — including across the
// violation-table fallback boundary and for any thread count — and
// snapshots written under either kernel must be byte-identical.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/hospital.h"
#include "holoclean/infer/gibbs.h"
#include "holoclean/infer/learner.h"
#include "holoclean/infer/marginals.h"
#include "holoclean/io/session_snapshot.h"
#include "holoclean/model/compiled_graph.h"
#include "holoclean/util/rng.h"

#include "session_helpers.h"

namespace holoclean {
namespace {

// ---------- Randomized unary graphs ----------

/// A random factor graph of unary-featured variables: random candidate
/// counts, biases, activations, and weight keys drawn from a small pool so
/// features collide across variables (the dense remap must dedupe them).
FactorGraph RandomUnaryGraph(uint64_t seed, int num_vars) {
  Rng rng(seed);
  std::vector<uint64_t> key_pool;
  for (int i = 0; i < 40; ++i) key_pool.push_back(rng.Next());
  FactorGraph graph;
  for (int v = 0; v < num_vars; ++v) {
    Variable var;
    var.cell = {static_cast<TupleId>(v), 0};
    var.is_evidence = (v % 3) != 0;
    size_t num_cand = 1 + rng.Below(5);
    var.init_index = static_cast<int>(rng.Below(num_cand));
    var.domain.resize(num_cand);
    for (size_t k = 0; k < num_cand; ++k) {
      var.domain[k] = static_cast<ValueId>(100 + k);
    }
    var.feat_begin.push_back(0);
    for (size_t k = 0; k < num_cand; ++k) {
      var.prior_bias.push_back(rng.Uniform() * 2.0 - 1.0);
      size_t num_feats = rng.Below(6);
      for (size_t i = 0; i < num_feats; ++i) {
        FeatureInstance f;
        f.weight_key = key_pool[rng.Below(key_pool.size())];
        f.activation = static_cast<float>(rng.Uniform() * 3.0);
        var.features.push_back(f);
      }
      var.feat_begin.push_back(static_cast<int32_t>(var.features.size()));
    }
    graph.AddVariable(std::move(var));
  }
  return graph;
}

WeightStore RandomWeights(uint64_t seed, const FactorGraph& graph) {
  Rng rng(seed);
  WeightStore weights;
  for (const Variable& var : graph.variables()) {
    for (const FeatureInstance& f : var.features) {
      if (rng.Chance(0.7)) {
        weights.Set(f.weight_key, rng.Uniform() * 4.0 - 2.0);
      }
    }
  }
  return weights;
}

TEST(CompiledGraph, DenseRemapIsSortedAndComplete) {
  FactorGraph graph = RandomUnaryGraph(1, 30);
  Table table(Schema({"A"}), std::make_shared<Dictionary>());
  std::vector<DenialConstraint> dcs;
  CompiledGraph compiled = CompiledGraph::Build(graph, table, dcs);

  const auto& keys = compiled.weight_keys();
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);  // Sorted, unique.
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(compiled.WeightIdOf(keys[i]), static_cast<int32_t>(i));
  }
  EXPECT_EQ(compiled.WeightIdOf(0xDEADBEEFDEADBEEFULL), -1);
  // Every feature key of the graph is mapped.
  for (const Variable& var : graph.variables()) {
    for (const FeatureInstance& f : var.features) {
      EXPECT_GE(compiled.WeightIdOf(f.weight_key), 0);
    }
  }
  EXPECT_EQ(compiled.num_variables(), graph.num_variables());
}

TEST(CompiledGraph, UnaryScoresBitIdenticalOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FactorGraph graph = RandomUnaryGraph(seed, 40);
    WeightStore weights = RandomWeights(seed ^ 0x9E37ULL, graph);
    Table table(Schema({"A"}), std::make_shared<Dictionary>());
    std::vector<DenialConstraint> dcs;
    CompiledGraph compiled = CompiledGraph::Build(graph, table, dcs);
    std::vector<double> dense = compiled.GatherWeights(weights);
    ASSERT_EQ(dense.size(), compiled.num_weights());
    for (size_t v = 0; v < graph.num_variables(); ++v) {
      const Variable& var = graph.variable(static_cast<int>(v));
      ASSERT_EQ(compiled.NumCandidates(static_cast<int>(v)),
                static_cast<int32_t>(var.NumCandidates()));
      for (size_t k = 0; k < var.NumCandidates(); ++k) {
        double ref = graph.UnaryScore(static_cast<int>(v),
                                      static_cast<int>(k), weights);
        double comp = compiled.UnaryScore(static_cast<int>(v),
                                          static_cast<int>(k), dense);
        EXPECT_EQ(ref, comp) << "seed " << seed << " var " << v
                             << " candidate " << k;
      }
    }
  }
}

TEST(CompiledGraph, LearnedWeightsAndNllBitIdentical) {
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    FactorGraph graph = RandomUnaryGraph(seed, 60);
    Table table(Schema({"A"}), std::make_shared<Dictionary>());
    std::vector<DenialConstraint> dcs;
    CompiledGraph compiled = CompiledGraph::Build(graph, table, dcs);

    LearnerOptions options;
    options.epochs = 7;
    options.seed = seed * 31;
    SgdLearner learner(&graph, options);

    WeightStore ref = RandomWeights(seed ^ 0x1234ULL, graph);
    WeightStore comp = ref;  // Same starting parameters.
    std::vector<double> ref_nll = learner.Train(&ref);
    std::vector<double> comp_nll = learner.Train(compiled, &comp);

    ASSERT_EQ(ref_nll.size(), comp_nll.size());
    for (size_t e = 0; e < ref_nll.size(); ++e) {
      EXPECT_EQ(ref_nll[e], comp_nll[e]) << "epoch " << e;
    }
    // The stores match entry for entry — same keys present (the lazy
    // create-on-touch semantics), same exact values.
    ASSERT_EQ(ref.raw().size(), comp.raw().size());
    for (const auto& [key, value] : ref.raw()) {
      auto it = comp.raw().find(key);
      ASSERT_NE(it, comp.raw().end()) << "missing key " << key;
      EXPECT_EQ(value, it->second) << "key " << key;
    }
  }
}

TEST(CompiledGraph, UntouchedWeightsStayAbsentFromTheStore) {
  // A single-candidate evidence variable: softmax prob is exactly 1.0, the
  // gradient coefficient is exactly 0, and the reference loop never
  // creates the weight. The compiled scatter must preserve that.
  FactorGraph graph;
  Variable var;
  var.cell = {0, 0};
  var.is_evidence = true;
  var.init_index = 0;
  var.domain = {100};
  var.prior_bias = {0.0};
  var.feat_begin = {0, 1};
  var.features = {{/*weight_key=*/77, 1.0f}};
  graph.AddVariable(std::move(var));

  Table table(Schema({"A"}), std::make_shared<Dictionary>());
  std::vector<DenialConstraint> dcs;
  CompiledGraph compiled = CompiledGraph::Build(graph, table, dcs);

  SgdLearner learner(&graph, LearnerOptions{});
  WeightStore ref, comp;
  learner.Train(&ref);
  learner.Train(compiled, &comp);
  EXPECT_EQ(ref.raw().count(77), 0u);
  EXPECT_EQ(comp.raw().count(77), 0u);
  EXPECT_EQ(ref.raw().size(), comp.raw().size());
}

TEST(CompiledGraph, ExactMarginalsBitIdentical) {
  FactorGraph graph = RandomUnaryGraph(21, 50);
  WeightStore weights = RandomWeights(22, graph);
  Table table(Schema({"A"}), std::make_shared<Dictionary>());
  std::vector<DenialConstraint> dcs;
  CompiledGraph compiled = CompiledGraph::Build(graph, table, dcs);

  Marginals ref = ExactIndependentMarginals(graph, weights);
  Marginals comp = ExactIndependentMarginals(compiled, weights);
  ASSERT_EQ(ref.probs().size(), comp.probs().size());
  for (size_t v = 0; v < ref.probs().size(); ++v) {
    ASSERT_EQ(ref.probs()[v].size(), comp.probs()[v].size());
    for (size_t k = 0; k < ref.probs()[v].size(); ++k) {
      EXPECT_EQ(ref.probs()[v][k], comp.probs()[v][k])
          << "var " << v << " candidate " << k;
    }
  }
}

// ---------- End-to-end with DC factors ----------

HoloCleanConfig FactorConfig() {
  HoloCleanConfig config;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 4;
  config.gibbs_samples = 12;
  config.epochs = 5;
  return config;
}

/// One full pipeline run over its own hospital instance. Owns the dataset
/// the session borrows, so sessions stay inspectable after the run.
struct RunInstance {
  explicit RunInstance(const HoloCleanConfig& config)
      : data([] {
          HospitalOptions options;
          options.num_rows = 150;
          return MakeHospital(options);
        }()) {
    auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
    EXPECT_TRUE(opened.ok()) << opened.status();
    if (!opened.ok()) return;
    session.emplace(std::move(opened).value());
    auto run = session->Run();
    EXPECT_TRUE(run.ok()) << run.status();
    if (run.ok()) report = run.value();
  }

  GeneratedData data;
  std::optional<Session> session;
  Report report;
};

HoloCleanConfig KernelConfig(bool compiled_kernel, size_t dc_table_cap,
                             size_t num_threads) {
  HoloCleanConfig c = FactorConfig();
  c.compiled_kernel = compiled_kernel;
  c.dc_table_cap = dc_table_cap;
  c.num_threads = num_threads;
  return c;
}

void ExpectReportsBitIdentical(const Report& a, const Report& b) {
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].cell, b.repairs[i].cell);
    EXPECT_EQ(a.repairs[i].old_value, b.repairs[i].old_value);
    EXPECT_EQ(a.repairs[i].new_value, b.repairs[i].new_value);
    EXPECT_EQ(a.repairs[i].probability, b.repairs[i].probability);
  }
  ASSERT_EQ(a.posteriors.size(), b.posteriors.size());
  for (size_t i = 0; i < a.posteriors.size(); ++i) {
    EXPECT_EQ(a.posteriors[i].cell, b.posteriors[i].cell);
    EXPECT_EQ(a.posteriors[i].map_value, b.posteriors[i].map_value);
    EXPECT_EQ(a.posteriors[i].map_prob, b.posteriors[i].map_prob);
  }
}

TEST(CompiledKernel, GibbsRepairsBitIdenticalToReference) {
  RunInstance ref(KernelConfig(/*compiled=*/false, 4096, /*threads=*/1));
  RunInstance comp(KernelConfig(/*compiled=*/true, 4096, /*threads=*/1));
  EXPECT_FALSE(ref.report.repairs.empty());
  ExpectReportsBitIdentical(ref.report, comp.report);
}

TEST(CompiledKernel, BitIdenticalForAnyThreadCount) {
  RunInstance ref(KernelConfig(/*compiled=*/false, 4096, /*threads=*/1));
  RunInstance comp_pool(KernelConfig(/*compiled=*/true, 4096, /*threads=*/0));
  ExpectReportsBitIdentical(ref.report, comp_pool.report);
}

TEST(CompiledKernel, FallbackBoundaryBitIdentical) {
  RunInstance ref(KernelConfig(/*compiled=*/false, 4096, 1));

  // Cap 0: every factor falls back to the evaluator path.
  RunInstance all_fallback(KernelConfig(/*compiled=*/true, 0, 1));
  ExpectReportsBitIdentical(ref.report, all_fallback.report);
  const auto& fb = all_fallback.session->context().compiled;
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(fb->stats().num_tabled_factors, 0u);
  EXPECT_GT(fb->stats().num_fallback_factors, 0u);

  // A small cap right at the boundary: some factors tabled, some fall
  // back — both paths must agree inside one sampler run.
  RunInstance mixed(KernelConfig(/*compiled=*/true, 16, 1));
  ExpectReportsBitIdentical(ref.report, mixed.report);
  const auto& mx = mixed.session->context().compiled;
  ASSERT_NE(mx, nullptr);
  EXPECT_GT(mx->stats().num_tabled_factors, 0u);

  // Default cap.
  RunInstance tabled(KernelConfig(/*compiled=*/true, 4096, 1));
  ExpectReportsBitIdentical(ref.report, tabled.report);
  const auto& tb = tabled.session->context().compiled;
  ASSERT_NE(tb, nullptr);
  EXPECT_GT(tb->stats().table_entries, 0u);
}

TEST(CompiledKernel, ViolationTablesMatchEvaluatorExhaustively) {
  HospitalOptions options;
  options.num_rows = 150;
  GeneratedData fresh = MakeHospital(options);
  auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&fresh.dataset, &fresh.dcs), {FactorConfig()});
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.RunThrough(StageId::kCompile).ok());

  const FactorGraph& graph = session.context().graph;
  const Table& table = fresh.dataset.dirty();
  CompiledGraph compiled = CompiledGraph::Build(graph, table, fresh.dcs);
  ASSERT_GT(compiled.stats().num_tabled_factors, 0u);

  DcEvaluator evaluator(&table);
  std::vector<CellOverride> overrides;
  size_t checked = 0;
  for (size_t fid = 0; fid < graph.dc_factors().size(); ++fid) {
    if (!compiled.HasViolationTable(static_cast<int>(fid))) continue;
    const DcFactor& factor = graph.dc_factors()[fid];
    // Enumerate every candidate combination through a fake assignment and
    // compare the table verdict with a direct evaluator call.
    std::vector<int> assignment(graph.num_variables(), 0);
    std::vector<size_t> combo(factor.var_ids.size(), 0);
    bool done = factor.var_ids.empty();
    while (!done) {
      overrides.clear();
      for (size_t i = 0; i < factor.var_ids.size(); ++i) {
        const Variable& var = graph.variable(factor.var_ids[i]);
        assignment[static_cast<size_t>(factor.var_ids[i])] =
            static_cast<int>(combo[i]);
        overrides.push_back({var.cell, var.domain[combo[i]]});
      }
      bool expected = evaluator.ViolatesWith(
          fresh.dcs[static_cast<size_t>(factor.dc_index)], factor.t1,
          factor.t2, overrides);
      // Score through the first factor variable; the others read from
      // `assignment`.
      bool got = compiled.TableViolated(
          static_cast<int>(fid), factor.var_ids[0],
          static_cast<int>(combo[0]), assignment);
      ASSERT_EQ(expected, got) << "factor " << fid;
      ++checked;
      for (size_t i = factor.var_ids.size(); i-- > 0;) {
        const Variable& var = graph.variable(factor.var_ids[i]);
        if (++combo[i] < var.NumCandidates()) break;
        combo[i] = 0;
        if (i == 0) done = true;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

// ---------- Snapshot compatibility ----------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct SnapshotPaths {
  SnapshotPaths() {
    std::string base =
        testing::TempDir() + "holoclean_compiled_test_" +
        testing::UnitTest::GetInstance()->current_test_info()->name();
    ref_path = base + "_ref.snapshot";
    comp_path = base + "_comp.snapshot";
  }
  ~SnapshotPaths() {
    std::remove(ref_path.c_str());
    std::remove(comp_path.c_str());
  }
  std::string ref_path;
  std::string comp_path;
};

/// Full runs under either kernel serialize to byte-identical snapshots:
/// the dense↔sparse weight conversion must not perturb the persisted
/// sparse view in any format version.
void CheckSnapshotBytesIdentical(uint32_t format_version, SectionCodec codec) {
  SnapshotPaths paths;
  HospitalOptions options;
  options.num_rows = 120;

  SnapshotSaveOptions save;
  save.format_version = format_version;
  save.codec = codec;

  GeneratedData ref_data = MakeHospital(options);
  HoloCleanConfig ref_config;
  ref_config.dc_mode = DcMode::kBoth;
  ref_config.partitioning = true;
  ref_config.gibbs_burn_in = 2;
  ref_config.gibbs_samples = 6;
  ref_config.epochs = 3;
  ref_config.compiled_kernel = false;
  auto ref_session = OpenStandaloneSession(CleaningInputs::Borrowed(&ref_data.dataset, &ref_data.dcs), {ref_config});
  ASSERT_TRUE(ref_session.ok());
  ASSERT_TRUE(ref_session.value().Run().ok());
  ASSERT_TRUE(ref_session.value().Save(paths.ref_path, save).ok());

  GeneratedData comp_data = MakeHospital(options);
  HoloCleanConfig comp_config = ref_config;
  comp_config.compiled_kernel = true;
  auto comp_session = OpenStandaloneSession(CleaningInputs::Borrowed(&comp_data.dataset, &comp_data.dcs), {comp_config});
  ASSERT_TRUE(comp_session.ok());
  ASSERT_TRUE(comp_session.value().Run().ok());
  ASSERT_TRUE(comp_session.value().Save(paths.comp_path, save).ok());

  std::string ref_bytes = ReadFileBytes(paths.ref_path);
  std::string comp_bytes = ReadFileBytes(paths.comp_path);
  ASSERT_FALSE(ref_bytes.empty());
  EXPECT_EQ(ref_bytes, comp_bytes);

  // Cross-restore: a snapshot written under the reference kernel restores
  // into a compiled-kernel session (the kernel knobs are excluded from the
  // config fingerprint) and re-runs from infer bit-identically.
  GeneratedData fresh = MakeHospital(options);
  auto restored = test_helpers::RestoreSessionOver(comp_config, paths.ref_path,
                                                 &fresh.dataset, fresh.dcs);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Session resumed = std::move(restored).value();
  resumed.Invalidate(StageId::kInfer);
  auto resumed_report = resumed.Run();
  ASSERT_TRUE(resumed_report.ok());
  ExpectReportsBitIdentical(ref_session.value().report(),
                            resumed_report.value());
}

TEST(CompiledKernel, SnapshotV2PackedBytesIdenticalAcrossKernels) {
  CheckSnapshotBytesIdentical(kSnapshotFormatVersion, SectionCodec::kPacked);
}

TEST(CompiledKernel, SnapshotV1BytesIdenticalAcrossKernels) {
  CheckSnapshotBytesIdentical(kSnapshotFormatV1, SectionCodec::kRaw);
}

// ---------- Parallel build ----------

TEST(CompiledGraph, ParallelBuildByteIdenticalToSequential) {
  // The pool-parallel arena fill and violation-table precompute must
  // produce exactly the bytes the sequential build produces, for any pool
  // size — including across the tabled/fallback boundary.
  HospitalOptions options;
  options.num_rows = 150;
  GeneratedData fresh = MakeHospital(options);
  auto opened = OpenStandaloneSession(CleaningInputs::Borrowed(&fresh.dataset, &fresh.dcs), {FactorConfig()});
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.RunThrough(StageId::kCompile).ok());
  const FactorGraph& graph = session.context().graph;
  const Table& table = fresh.dataset.dirty();

  CompiledGraphOptions copts;
  copts.violation_table_cap = 512;  // Keep some factors on the fallback.
  CompiledGraph sequential =
      CompiledGraph::Build(graph, table, fresh.dcs, copts, nullptr);
  ASSERT_GT(sequential.stats().num_tabled_factors, 0u);

  for (size_t threads : {size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    CompiledGraph parallel =
        CompiledGraph::Build(graph, table, fresh.dcs, copts, &pool);

    EXPECT_EQ(parallel.weight_keys(), sequential.weight_keys());
    EXPECT_EQ(parallel.feat_weight(), sequential.feat_weight());
    EXPECT_EQ(parallel.feat_act(), sequential.feat_act());
    EXPECT_EQ(parallel.fov(), sequential.fov());
    EXPECT_EQ(parallel.factor_vars(), sequential.factor_vars());
    EXPECT_EQ(parallel.stats().num_tabled_factors,
              sequential.stats().num_tabled_factors);
    EXPECT_EQ(parallel.stats().num_fallback_factors,
              sequential.stats().num_fallback_factors);
    EXPECT_EQ(parallel.stats().table_entries,
              sequential.stats().table_entries);

    ASSERT_EQ(parallel.num_variables(), sequential.num_variables());
    for (size_t v = 0; v < sequential.num_variables(); ++v) {
      int var = static_cast<int>(v);
      ASSERT_EQ(parallel.NumCandidates(var), sequential.NumCandidates(var));
      EXPECT_EQ(parallel.IsEvidence(var), sequential.IsEvidence(var));
      EXPECT_EQ(parallel.InitIndex(var), sequential.InitIndex(var));
      EXPECT_EQ(parallel.FovBegin(var), sequential.FovBegin(var));
      for (int k = 0; k < sequential.NumCandidates(var); ++k) {
        EXPECT_EQ(parallel.FeatBegin(var, k), sequential.FeatBegin(var, k));
        EXPECT_EQ(parallel.FeatEnd(var, k), sequential.FeatEnd(var, k));
      }
    }

    ASSERT_EQ(parallel.num_factors(), sequential.num_factors());
    std::vector<double> zero(sequential.num_weights(), 0.0);
    for (size_t f = 0; f < sequential.num_factors(); ++f) {
      int fid = static_cast<int>(f);
      EXPECT_DOUBLE_EQ(parallel.FactorWeight(fid),
                       sequential.FactorWeight(fid));
      EXPECT_EQ(parallel.FactorDcIndex(fid), sequential.FactorDcIndex(fid));
      EXPECT_EQ(parallel.FactorT1(fid), sequential.FactorT1(fid));
      EXPECT_EQ(parallel.FactorT2(fid), sequential.FactorT2(fid));
      ASSERT_EQ(parallel.HasViolationTable(fid),
                sequential.HasViolationTable(fid));
      if (!sequential.HasViolationTable(fid)) continue;
      size_t entries = 1;
      for (int32_t i = sequential.FactorVarBegin(fid);
           i < sequential.FactorVarEnd(fid); ++i) {
        entries *= static_cast<size_t>(sequential.NumCandidates(
            sequential.factor_vars()[static_cast<size_t>(i)]));
      }
      EXPECT_EQ(std::memcmp(parallel.ViolationTableEntry(fid, 0),
                            sequential.ViolationTableEntry(fid, 0), entries),
                0);
    }
  }
}

}  // namespace
}  // namespace holoclean
