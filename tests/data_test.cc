#include <gtest/gtest.h>

#include <cmath>

#include "holoclean/data/error_injector.h"
#include "holoclean/data/flights.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/data/physicians.h"
#include "holoclean/detect/violation_detector.h"

namespace holoclean {
namespace {

// ---------- Error injector primitives ----------

TEST(ErrorInjector, TypoChangesValue) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string out = InjectTypo("Chicago", &rng);
    EXPECT_NE(out, "Chicago");
    EXPECT_EQ(out.size(), 7u);
  }
  EXPECT_EQ(InjectTypo("", &rng), "x");
}

TEST(ErrorInjector, PerturbDigitChangesOneDigit) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    std::string out = PerturbDigit("60608", &rng);
    EXPECT_NE(out, "60608");
    EXPECT_EQ(out.size(), 5u);
    int differences = 0;
    for (size_t j = 0; j < 5; ++j) {
      if (out[j] != "60608"[j]) ++differences;
    }
    EXPECT_EQ(differences, 1);
  }
}

TEST(ErrorInjector, SwapAdjacentChangesValue) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(SwapAdjacent("Sacramento", &rng), "Sacramento");
  }
}

TEST(ErrorInjector, PickDifferentAvoidsValue) {
  Rng rng(4);
  std::vector<std::string> pool = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(PickDifferent(pool, "a", &rng), "a");
  }
  std::vector<std::string> singleton = {"a"};
  EXPECT_EQ(PickDifferent(singleton, "a", &rng), "a");
}

TEST(Geography, ZipsAreUniqueAndCityConsistent) {
  auto geo = MakeGeography(20, 3, 5);
  ASSERT_EQ(geo.size(), 20u);
  std::set<std::string> zips;
  for (const auto& city : geo) {
    EXPECT_EQ(city.zips.size(), 3u);
    EXPECT_FALSE(city.state.empty());
    for (const auto& zip : city.zips) {
      EXPECT_TRUE(zips.insert(zip).second) << "duplicate zip " << zip;
    }
  }
}

TEST(MinutesToTime, Formats) {
  EXPECT_EQ(MinutesToTime(0), "00:00");
  EXPECT_EQ(MinutesToTime(615), "10:15");
  EXPECT_EQ(MinutesToTime(1439), "23:59");
  EXPECT_EQ(MinutesToTime(1440), "00:00");
}

// ---------- Generators: shared properties ----------

struct GeneratorCase {
  std::string name;
  size_t rows;
  size_t attrs;
  size_t dcs;
};

class GeneratorTest : public ::testing::TestWithParam<GeneratorCase> {
 protected:
  static GeneratedData Make(const std::string& name, uint64_t seed) {
    if (name == "hospital") return MakeHospital({500, 0.05, seed});
    if (name == "flights") {
      FlightsOptions options;
      options.num_rows = 600;
      options.seed = seed;
      return MakeFlights(options);
    }
    if (name == "food") return MakeFood({800, 0.06, seed});
    PhysiciansOptions options;
    options.num_rows = 1000;
    options.seed = seed;
    return MakePhysicians(options);
  }
};

TEST_P(GeneratorTest, ShapeMatchesSpec) {
  const GeneratorCase& c = GetParam();
  GeneratedData data = Make(c.name, 21);
  EXPECT_EQ(data.name, c.name);
  EXPECT_EQ(data.dataset.dirty().num_rows(), c.rows);
  EXPECT_EQ(data.dataset.dirty().schema().num_attrs(), c.attrs);
  EXPECT_EQ(data.dcs.size(), c.dcs);
  ASSERT_TRUE(data.dataset.has_clean());
  EXPECT_EQ(data.dataset.clean().num_rows(), c.rows);
}

TEST_P(GeneratorTest, CleanTableSatisfiesConstraints) {
  GeneratedData data = Make(GetParam().name, 22);
  Table clean = data.dataset.clean().Clone();
  ViolationDetector detector(&clean, &data.dcs);
  EXPECT_TRUE(detector.Detect().empty());
}

TEST_P(GeneratorTest, DirtyTableHasErrorsAndViolations) {
  GeneratedData data = Make(GetParam().name, 23);
  EXPECT_GT(data.dataset.TrueErrors().size(), 0u);
  ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
  EXPECT_GT(detector.Detect().size(), 0u);
}

TEST_P(GeneratorTest, DeterministicForSeed) {
  GeneratedData a = Make(GetParam().name, 24);
  GeneratedData b = Make(GetParam().name, 24);
  ASSERT_EQ(a.dataset.dirty().num_rows(), b.dataset.dirty().num_rows());
  for (size_t t = 0; t < a.dataset.dirty().num_rows(); ++t) {
    for (size_t at = 0; at < a.dataset.dirty().schema().num_attrs(); ++at) {
      EXPECT_EQ(a.dataset.dirty().GetString(static_cast<TupleId>(t),
                                            static_cast<AttrId>(at)),
                b.dataset.dirty().GetString(static_cast<TupleId>(t),
                                            static_cast<AttrId>(at)));
    }
  }
}

TEST_P(GeneratorTest, DifferentSeedsDiffer) {
  GeneratedData a = Make(GetParam().name, 25);
  GeneratedData b = Make(GetParam().name, 26);
  size_t differences = 0;
  size_t n = std::min(a.dataset.dirty().num_rows(),
                      b.dataset.dirty().num_rows());
  for (size_t t = 0; t < n; ++t) {
    if (a.dataset.dirty().GetString(static_cast<TupleId>(t), 1) !=
        b.dataset.dirty().GetString(static_cast<TupleId>(t), 1)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(GeneratorCase{"hospital", 500, 19, 9},
                      GeneratorCase{"flights", 600, 6, 4},
                      GeneratorCase{"food", 800, 17, 7},
                      GeneratorCase{"physicians", 1000, 18, 9}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.name;
    });

// ---------- Dataset-specific profiles ----------

TEST(Hospital, ErrorRateNearTarget) {
  GeneratedData data = MakeHospital({1000, 0.05, 31});
  double cells = static_cast<double>(data.dataset.dirty().num_cells());
  double errors = static_cast<double>(data.dataset.TrueErrors().size());
  // 11 of 19 attributes are error-eligible at rate 5%.
  double expected = 0.05 * 11.0 / 19.0;
  EXPECT_NEAR(errors / cells, expected, 0.01);
}

TEST(Hospital, HasDuplicationAcrossProviderRows) {
  GeneratedData data = MakeHospital({1000, 0.05, 32});
  const Table& clean = data.dataset.clean();
  AttrId provider = clean.schema().IndexOf("ProviderNumber");
  std::unordered_map<ValueId, int> counts;
  for (ValueId v : clean.Column(provider)) ++counts[v];
  int max_count = 0;
  for (const auto& [v, n] : counts) max_count = std::max(max_count, n);
  EXPECT_GT(max_count, 5);
}

TEST(Flights, MajorityOfCellsNoisy) {
  FlightsOptions options;
  options.num_rows = 2377;
  GeneratedData data = MakeFlights(options);
  ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
  NoisyCells noisy =
      ViolationDetector::NoisyFromViolations(detector.Detect());
  // Paper Table 2: noisy cells (11,180) comparable to total cells (14,262).
  EXPECT_GT(noisy.size(), data.dataset.dirty().num_cells() / 2);
}

TEST(Flights, SourceColumnDeclaredAndClean) {
  FlightsOptions options;
  options.num_rows = 500;
  GeneratedData data = MakeFlights(options);
  ASSERT_TRUE(data.dataset.has_source_attr());
  AttrId src = data.dataset.source_attr();
  for (size_t t = 0; t < data.dataset.dirty().num_rows(); ++t) {
    EXPECT_EQ(data.dataset.dirty().Get(static_cast<TupleId>(t), src),
              data.dataset.clean().Get(static_cast<TupleId>(t), src));
  }
}

TEST(Food, ErrorsAreNonSystematic) {
  GeneratedData data = MakeFood({2000, 0.06, 33});
  // Count distinct wrong values among City errors: random typos should
  // rarely repeat (non-systematic), unlike Physicians.
  AttrId city = data.dataset.dirty().schema().IndexOf("City");
  std::unordered_map<ValueId, int> wrong_counts;
  for (const CellRef& c : data.dataset.TrueErrors()) {
    if (c.attr == city) ++wrong_counts[data.dataset.dirty().Get(c)];
  }
  ASSERT_GT(wrong_counts.size(), 3u);
  int max_repeat = 0;
  for (const auto& [v, n] : wrong_counts) {
    max_repeat = std::max(max_repeat, n);
  }
  EXPECT_LT(max_repeat, 12);
}

TEST(Physicians, ErrorsAreSystematic) {
  PhysiciansOptions options;
  options.num_rows = 4000;
  options.seed = 34;
  GeneratedData data = MakePhysicians(options);
  // The same misspelled city should repeat across many rows (the paper's
  // "Scaramento" effect).
  AttrId city = data.dataset.dirty().schema().IndexOf("City");
  std::unordered_map<ValueId, int> wrong_counts;
  for (const CellRef& c : data.dataset.TrueErrors()) {
    if (c.attr == city) ++wrong_counts[data.dataset.dirty().Get(c)];
  }
  int max_repeat = 0;
  for (const auto& [v, n] : wrong_counts) {
    max_repeat = std::max(max_repeat, n);
  }
  EXPECT_GT(max_repeat, 20);
}

TEST(Physicians, DictionaryFormatMismatch) {
  PhysiciansOptions options;
  options.num_rows = 500;
  GeneratedData data = MakePhysicians(options);
  ASSERT_EQ(data.dicts.size(), 1u);
  // Every dictionary zip is zero-padded to 6 digits; data zips are 5.
  const Table& listing = data.dicts.Get(0).records();
  for (size_t t = 0; t < listing.num_rows(); ++t) {
    EXPECT_EQ(listing.GetString(static_cast<TupleId>(t), 0).size(), 6u);
  }
}

}  // namespace
}  // namespace holoclean
