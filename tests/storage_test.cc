#include <gtest/gtest.h>

#include "holoclean/storage/dataset.h"
#include "holoclean/storage/table.h"

namespace holoclean {
namespace {

Table SmallTable() {
  Table t(Schema({"City", "Zip"}), std::make_shared<Dictionary>());
  t.AppendRow({"Chicago", "60608"});
  t.AppendRow({"Chicago", "60609"});
  t.AppendRow({"Evanston", "60201"});
  return t;
}

// ---------- Dictionary ----------

TEST(Dictionary, NullIsIdZero) {
  Dictionary d;
  EXPECT_EQ(d.Intern(""), Dictionary::kNull);
  EXPECT_EQ(d.GetString(Dictionary::kNull), "");
}

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  ValueId a = d.Intern("x");
  EXPECT_EQ(d.Intern("x"), a);
  EXPECT_EQ(d.size(), 2u);  // "" and "x".
}

TEST(Dictionary, LookupDoesNotIntern) {
  Dictionary d;
  EXPECT_EQ(d.Lookup("missing"), -1);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_FALSE(d.Contains("missing"));
}

TEST(Dictionary, RoundTrip) {
  Dictionary d;
  ValueId a = d.Intern("alpha");
  ValueId b = d.Intern("beta");
  EXPECT_EQ(d.GetString(a), "alpha");
  EXPECT_EQ(d.GetString(b), "beta");
  EXPECT_EQ(d.Lookup("beta"), b);
}

// ---------- Schema ----------

TEST(Schema, IndexOf) {
  Schema s({"A", "B", "C"});
  EXPECT_EQ(s.IndexOf("A"), 0);
  EXPECT_EQ(s.IndexOf("C"), 2);
  EXPECT_EQ(s.IndexOf("Z"), -1);
  EXPECT_EQ(s.num_attrs(), 3u);
  EXPECT_EQ(s.name(1), "B");
}

// ---------- Table ----------

TEST(Table, AppendAndGet) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cells(), 6u);
  EXPECT_EQ(t.GetString(0, 0), "Chicago");
  EXPECT_EQ(t.GetString(2, 1), "60201");
  // Equal strings share the same id across rows and columns.
  EXPECT_EQ(t.Get(0, 0), t.Get(1, 0));
}

TEST(Table, SetAndSetString) {
  Table t = SmallTable();
  t.SetString(0, 1, "60610");
  EXPECT_EQ(t.GetString(0, 1), "60610");
  ValueId evanston = t.dict().Lookup("Evanston");
  t.Set(CellRef{0, 0}, evanston);
  EXPECT_EQ(t.GetString(CellRef{0, 0}), "Evanston");
}

TEST(Table, ActiveDomainExcludesNull) {
  Table t(Schema({"A"}), std::make_shared<Dictionary>());
  t.AppendRow({"x"});
  t.AppendRow({""});
  t.AppendRow({"y"});
  t.AppendRow({"x"});
  EXPECT_EQ(t.ActiveDomain(0).size(), 2u);
}

TEST(Table, CloneIsDeepForCellsSharedForDict) {
  Table t = SmallTable();
  Table copy = t.Clone();
  copy.SetString(0, 0, "Springfield");
  EXPECT_EQ(t.GetString(0, 0), "Chicago");
  // Dictionary is shared: the new value is visible through both tables.
  EXPECT_TRUE(t.dict().Contains("Springfield"));
}

TEST(Table, CsvRoundTrip) {
  Table t = SmallTable();
  auto parsed = Table::FromCsv(t.ToCsv());
  ASSERT_TRUE(parsed.ok());
  const Table& u = parsed.value();
  ASSERT_EQ(u.num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t a = 0; a < t.schema().num_attrs(); ++a) {
      EXPECT_EQ(u.GetString(static_cast<TupleId>(r), static_cast<AttrId>(a)),
                t.GetString(static_cast<TupleId>(r), static_cast<AttrId>(a)));
    }
  }
}

TEST(Table, FromCsvRejectsEmptyHeader) {
  CsvDocument doc;
  EXPECT_FALSE(Table::FromCsv(doc).ok());
}

// ---------- CellRef ----------

TEST(CellRef, OrderingAndEquality) {
  CellRef a{1, 2};
  CellRef b{1, 3};
  CellRef c{2, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == (CellRef{1, 2}));
  EXPECT_FALSE(a == b);
}

// ---------- Dataset / NoisyCells ----------

TEST(Dataset, TrueErrorsComparesAgainstClean) {
  Table dirty = SmallTable();
  Table clean = dirty.Clone();
  dirty.SetString(1, 0, "Chicgao");
  dirty.SetString(2, 1, "60202");
  Dataset dataset(std::move(dirty));
  dataset.set_clean(std::move(clean));
  auto errors = dataset.TrueErrors();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], (CellRef{1, 0}));
  EXPECT_EQ(errors[1], (CellRef{2, 1}));
}

TEST(Dataset, SourceAttrExcludedFromRepair) {
  Table t(Schema({"A", "Src"}), std::make_shared<Dictionary>());
  t.AppendRow({"x", "s1"});
  Dataset dataset(std::move(t));
  dataset.set_source_attr(1);
  EXPECT_EQ(dataset.RepairableAttrs(), (std::vector<AttrId>{0}));
  EXPECT_TRUE(dataset.has_source_attr());
}

TEST(NoisyCells, DeduplicatesAndMerges) {
  NoisyCells a;
  a.Add({0, 0});
  a.Add({0, 0});
  EXPECT_EQ(a.size(), 1u);
  NoisyCells b;
  b.Add({0, 0});
  b.Add({1, 1});
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.Contains({1, 1}));
  EXPECT_FALSE(a.Contains({2, 2}));
}

}  // namespace
}  // namespace holoclean
