// Tests for the thread pool and for the determinism guarantee of the
// parallel sections: any thread count must produce bit-identical results.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>

#include "holoclean/core/evaluation.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/util/thread_pool.h"

#include "session_helpers.h"

namespace holoclean {
namespace {

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksCoverRangeDisjointly) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5000);
  pool.ParallelChunks(5000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SingleWorkerInline) {
  ThreadPool pool(1);
  int sum = 0;  // No atomics needed: single worker executes inline.
  pool.ParallelFor(100, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, NestedUseFromResults) {
  // Sequential reuse of the pool for several sections.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(200, [&](size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 5L * 19900L);
}

TEST(ThreadPool, EnqueueRunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Enqueue([&count] { count.fetch_add(1); });
    }
    // The destructor drains the queue, so all 100 ran exactly once.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskGroup, RunsAllTasksWithNullPoolInline) {
  TaskGroup group(nullptr);
  int sum = 0;  // Inline execution: no atomics needed.
  for (int i = 0; i < 50; ++i) {
    group.Submit([&sum, i] { sum += i; });
  }
  group.Wait();
  EXPECT_EQ(sum, 1225);
}

TEST(TaskGroup, CallerDrainsGroupWhileWorkersAreBusy) {
  // A single-worker pool whose worker is parked on a gate: the group's
  // tasks can only complete because Wait() runs them on the calling
  // thread. Without caller participation this test would deadlock.
  ThreadPool pool(1);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.Enqueue([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  });
  std::atomic<int> count{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 20; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(count.load(), 20);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
}

TEST(TaskGroup, NestedGroupsFromPoolTasksComplete) {
  // A pool task that opens its own parallel section (the batch-job shape:
  // jobs run on workers and their stages fan out on the same pool).
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  TaskGroup outer(&pool);
  for (int job = 0; job < 4; ++job) {
    outer.Submit([&pool, &inner_total] {
      pool.ParallelFor(100, [&inner_total](size_t) {
        inner_total.fetch_add(1);
      });
    });
  }
  outer.Wait();
  EXPECT_EQ(inner_total.load(), 400);
}

TEST(ThreadPool, ConcurrentParallelSectionsFromManyThreads) {
  // Several caller threads share one pool; every section's iterations
  // must run exactly once despite interleaving on the shared queue.
  ThreadPool pool(4);
  constexpr size_t kCallers = 4;
  constexpr size_t kIterations = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kIterations);
  }
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.ParallelFor(kIterations, [&hits, c](size_t i) {
        hits[c][i].fetch_add(1);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (const auto& section : hits) {
    for (const auto& h : section) EXPECT_EQ(h.load(), 1);
  }
}

class ThreadCountSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ThreadCountSweep, ViolationDetectionIdentical) {
  GeneratedData data = MakeHospital({300, 0.08, 81});
  ThreadPool pool(GetParam());
  ViolationDetector::Options options;
  options.pool = &pool;
  ViolationDetector parallel(&data.dataset.dirty(), &data.dcs, options);
  ViolationDetector sequential(&data.dataset.dirty(), &data.dcs);
  auto a = parallel.Detect();
  auto b = sequential.Detect();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dc_index, b[i].dc_index);
    EXPECT_EQ(a[i].t1, b[i].t1);
    EXPECT_EQ(a[i].t2, b[i].t2);
  }
}

TEST_P(ThreadCountSweep, PipelineRepairsIdentical) {
  auto run = [](size_t threads) {
    GeneratedData data = MakeFood({800, 0.06, 82});
    HoloCleanConfig config;
    config.tau = 0.5;
    config.num_threads = threads;
    config.dc_mode = DcMode::kBoth;
    config.partitioning = true;
    config.gibbs_burn_in = 5;
    config.gibbs_samples = 20;
    auto report = CleanOnce(CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
    EXPECT_TRUE(report.ok());
    return report.value().repairs;
  };
  auto sequential = run(1);
  auto parallel = run(GetParam());
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].cell, parallel[i].cell);
    EXPECT_EQ(sequential[i].new_value, parallel[i].new_value);
    EXPECT_DOUBLE_EQ(sequential[i].probability, parallel[i].probability);
  }
}

TEST_P(ThreadCountSweep, PartitionParallelMarginalsMatchSequential) {
  // Partition-parallel grounding + per-component Gibbs chains must produce
  // the same posterior marginals as the fully sequential run (the engine
  // guarantees bit-identical results; assert within a tight tolerance).
  auto marginals_of = [](size_t threads) {
    GeneratedData data = MakeFood({600, 0.06, 83});
    HoloCleanConfig config;
    config.tau = 0.5;
    config.num_threads = threads;
    config.dc_mode = DcMode::kBoth;
    config.partitioning = true;
    config.gibbs_burn_in = 5;
    config.gibbs_samples = 20;
    auto opened = test_helpers::OpenSessionOver(config, &data.dataset, data.dcs);
    EXPECT_TRUE(opened.ok());
    Session session = std::move(opened).value();
    EXPECT_TRUE(session.Run().ok());
    const PipelineContext& ctx = session.context();
    std::vector<std::pair<CellRef, std::vector<double>>> out;
    for (int32_t v : ctx.graph.query_vars()) {
      out.emplace_back(ctx.graph.variable(v).cell, ctx.marginals.Of(v));
    }
    return out;
  };
  auto sequential = marginals_of(1);
  auto parallel = marginals_of(GetParam());
  ASSERT_EQ(sequential.size(), parallel.size());
  ASSERT_FALSE(sequential.empty());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].first, parallel[i].first);
    ASSERT_EQ(sequential[i].second.size(), parallel[i].second.size());
    for (size_t k = 0; k < sequential[i].second.size(); ++k) {
      EXPECT_NEAR(sequential[i].second[k], parallel[i].second[k], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountSweep,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace holoclean
