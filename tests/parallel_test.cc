// Tests for the thread pool and for the determinism guarantee of the
// parallel sections: any thread count must produce bit-identical results.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "holoclean/core/evaluation.h"
#include "holoclean/core/pipeline.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {
namespace {

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksCoverRangeDisjointly) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5000);
  pool.ParallelChunks(5000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SingleWorkerInline) {
  ThreadPool pool(1);
  int sum = 0;  // No atomics needed: single worker executes inline.
  pool.ParallelFor(100, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, NestedUseFromResults) {
  // Sequential reuse of the pool for several sections.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(200, [&](size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 5L * 19900L);
}

class ThreadCountSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ThreadCountSweep, ViolationDetectionIdentical) {
  GeneratedData data = MakeHospital({300, 0.08, 81});
  ThreadPool pool(GetParam());
  ViolationDetector::Options options;
  options.pool = &pool;
  ViolationDetector parallel(&data.dataset.dirty(), &data.dcs, options);
  ViolationDetector sequential(&data.dataset.dirty(), &data.dcs);
  auto a = parallel.Detect();
  auto b = sequential.Detect();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dc_index, b[i].dc_index);
    EXPECT_EQ(a[i].t1, b[i].t1);
    EXPECT_EQ(a[i].t2, b[i].t2);
  }
}

TEST_P(ThreadCountSweep, PipelineRepairsIdentical) {
  auto run = [](size_t threads) {
    GeneratedData data = MakeFood({800, 0.06, 82});
    HoloCleanConfig config;
    config.tau = 0.5;
    config.num_threads = threads;
    config.dc_mode = DcMode::kBoth;
    config.partitioning = true;
    config.gibbs_burn_in = 5;
    config.gibbs_samples = 20;
    auto report = HoloClean(config).Run(&data.dataset, data.dcs);
    EXPECT_TRUE(report.ok());
    return report.value().repairs;
  };
  auto sequential = run(1);
  auto parallel = run(GetParam());
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].cell, parallel[i].cell);
    EXPECT_EQ(sequential[i].new_value, parallel[i].new_value);
    EXPECT_DOUBLE_EQ(sequential[i].probability, parallel[i].probability);
  }
}

TEST_P(ThreadCountSweep, PartitionParallelMarginalsMatchSequential) {
  // Partition-parallel grounding + per-component Gibbs chains must produce
  // the same posterior marginals as the fully sequential run (the engine
  // guarantees bit-identical results; assert within a tight tolerance).
  auto marginals_of = [](size_t threads) {
    GeneratedData data = MakeFood({600, 0.06, 83});
    HoloCleanConfig config;
    config.tau = 0.5;
    config.num_threads = threads;
    config.dc_mode = DcMode::kBoth;
    config.partitioning = true;
    config.gibbs_burn_in = 5;
    config.gibbs_samples = 20;
    HoloClean cleaner(config);
    auto opened = cleaner.Open(&data.dataset, data.dcs);
    EXPECT_TRUE(opened.ok());
    Session session = std::move(opened).value();
    EXPECT_TRUE(session.Run().ok());
    const PipelineContext& ctx = session.context();
    std::vector<std::pair<CellRef, std::vector<double>>> out;
    for (int32_t v : ctx.graph.query_vars()) {
      out.emplace_back(ctx.graph.variable(v).cell, ctx.marginals.Of(v));
    }
    return out;
  };
  auto sequential = marginals_of(1);
  auto parallel = marginals_of(GetParam());
  ASSERT_EQ(sequential.size(), parallel.size());
  ASSERT_FALSE(sequential.empty());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].first, parallel[i].first);
    ASSERT_EQ(sequential[i].second.size(), parallel[i].second.size());
    for (size_t k = 0; k < sequential[i].second.size(); ++k) {
      EXPECT_NEAR(sequential[i].second[k], parallel[i].second[k], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountSweep,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace holoclean
