// holoclean_serve_client — command-line client for holoclean_serve.
//
// Speaks the serve/protocol.h wire format over loopback and prints the
// JSON response to stdout. Exit status: 0 when the server answered
// ok=true, 1 when it rejected the request, 2 on usage/transport errors.
//
// Usage:
//   holoclean_serve_client --port N register <tenant> <dataset> <csv> <dcs>
//   holoclean_serve_client --port N drop     <tenant> <dataset>
//   holoclean_serve_client --port N list     [tenant]
//   holoclean_serve_client --port N clean    <tenant> <dataset> [k=v ...]
//   holoclean_serve_client --port N feedback <tenant> <dataset> <tid> <attr>
//                                            <value>
//   holoclean_serve_client --port N append   <tenant> <dataset> <csv>
//   holoclean_serve_client --port N status   [tenant dataset]
//
// `clean` accepts config overrides as key=value pairs (tau=0.7
// epochs=10 compiled_kernel=false ...). `status` with no arguments asks
// for the global server view (queue depth, error counters). `append`
// streams the data rows of a headered CSV file into the tenant's working
// copy (append_rows op) and prints the incremental re-clean's report.
//
// Shared flags (before the op):
//   --deadline-ms N    request deadline forwarded to the server queue
//   --timeout-ms N     socket connect/read/write timeout
//   --retries N        retry overloaded/draining/transport rejections with
//                      jittered exponential backoff (N attempts total)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "holoclean/serve/client.h"
#include "holoclean/util/csv.h"

namespace {

using holoclean::JsonValue;
using holoclean::Result;
using holoclean::Status;
namespace serve = holoclean::serve;

int Usage() {
  std::fprintf(
      stderr,
      "usage: holoclean_serve_client --port N [--deadline-ms N]\n"
      "                              [--timeout-ms N] [--retries N]\n"
      "                              <op> [args...]\n"
      "  register <tenant> <dataset> <csv-file> <dc-file>\n"
      "  drop     <tenant> <dataset>\n"
      "  list     [tenant]\n"
      "  clean    <tenant> <dataset> [key=value ...]\n"
      "  feedback <tenant> <dataset> <tid> <attr> <value>\n"
      "  append   <tenant> <dataset> <csv-file>  (header row + new rows)\n"
      "  status   [tenant dataset]   (no args: global server counters)\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read error on " + path);
  return text;
}

/// Parses a "key=value" override into a JSON scalar (bool or number).
Status AddOverride(const std::string& pair, JsonValue* overrides) {
  size_t eq = pair.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("override \"" + pair +
                                   "\" is not key=value");
  }
  std::string key = pair.substr(0, eq);
  std::string value = pair.substr(eq + 1);
  if (value == "true" || value == "false") {
    overrides->Set(key, JsonValue::Bool(value == "true"));
    return Status::OK();
  }
  char* end = nullptr;
  double number = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("override \"" + pair +
                                   "\" needs a bool or numeric value");
  }
  overrides->Set(key, JsonValue::Number(number));
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int deadline_ms = 0;
  int timeout_ms = 0;
  int retries = 1;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (port <= 0 || args.empty() || retries < 1) return Usage();

  serve::Request req;
  const std::string& op = args[0];
  if (op == "register" && args.size() == 5) {
    req.op = serve::Op::kRegisterDataset;
    req.tenant = args[1];
    req.dataset = args[2];
    auto csv = ReadFile(args[3]);
    auto dcs = ReadFile(args[4]);
    if (!csv.ok() || !dcs.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!csv.ok() ? csv.status() : dcs.status()).ToString().c_str());
      return 2;
    }
    req.csv_text = std::move(csv).value();
    req.dc_text = std::move(dcs).value();
  } else if (op == "drop" && args.size() == 3) {
    req.op = serve::Op::kDropDataset;
    req.tenant = args[1];
    req.dataset = args[2];
  } else if (op == "list" && args.size() <= 2) {
    req.op = serve::Op::kListDatasets;
    if (args.size() == 2) req.tenant = args[1];
  } else if (op == "clean" && args.size() >= 3) {
    req.op = serve::Op::kClean;
    req.tenant = args[1];
    req.dataset = args[2];
    for (size_t i = 3; i < args.size(); ++i) {
      Status st = AddOverride(args[i], &req.config_overrides);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
    }
  } else if (op == "feedback" && args.size() == 6) {
    req.op = serve::Op::kFeedback;
    req.tenant = args[1];
    req.dataset = args[2];
    req.cell_tid = std::atoll(args[3].c_str());
    req.cell_attr = args[4];
    req.cell_value = args[5];
  } else if (op == "append" && args.size() == 4) {
    req.op = serve::Op::kAppendRows;
    req.tenant = args[1];
    req.dataset = args[2];
    auto doc = holoclean::ReadCsvFile(args[3]);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 2;
    }
    req.rows = std::move(doc).value().rows;
    if (req.rows.empty()) {
      std::fprintf(stderr, "append: %s has no data rows\n", args[3].c_str());
      return 2;
    }
  } else if (op == "status" && (args.size() == 1 || args.size() == 3)) {
    // With no target the server answers with its global counters only.
    req.op = serve::Op::kExplainStatus;
    if (args.size() == 3) {
      req.tenant = args[1];
      req.dataset = args[2];
    }
  } else {
    return Usage();
  }
  req.deadline_ms = deadline_ms;

  auto client = serve::Client::Connect(port, timeout_ms);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 2;
  }

  JsonValue response;
  if (retries > 1) {
    serve::RetryOptions retry;
    retry.max_attempts = retries;
    if (deadline_ms > 0) retry.overall_deadline_ms = deadline_ms;
    auto result = client.value().CallWithRetry(port, req, retry);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      // Retries exhausted on a server rejection (overloaded/draining) is
      // still a rejection, not a transport failure.
      return result.status().code() == holoclean::StatusCode::kOutOfRange ? 1
                                                                          : 2;
    }
    response = result.value().response;
  } else {
    auto direct = client.value().Call(req);
    if (!direct.ok()) {
      std::fprintf(stderr, "%s\n", direct.status().ToString().c_str());
      return 2;
    }
    response = direct.value();
  }
  std::printf("%s\n", response.Dump().c_str());
  return response.GetBool("ok") ? 0 : 1;
}
