// holoclean — command-line data repairing.
//
// Reads a dirty CSV table and a denial-constraint file, optionally an
// external dictionary CSV with matching dependencies, runs the HoloClean
// pipeline, and writes the repaired table plus a per-repair report.
//
//   holoclean --data dirty.csv --constraints dcs.txt
//             [--dict listing.csv --mds mds.txt]
//             [--output repaired.csv] [--repairs repairs.csv]
//             [--ground-truth clean.csv]
//             [--tau 0.5] [--mode feats|factors|both] [--partitioning]
//             [--min-confidence 0.0] [--seed 42] [--threads 0]
//             [--stages detect,compile] [--rerun-from infer]
//             [--compiled-kernel on|off] [--dc-table-cap 4096]
//   holoclean --batch manifest.txt [--threads 0] [shared config flags]
//   holoclean --data growing.csv --constraints dcs.txt --follow
//             [--follow-batch-rows 64] [--follow-poll-ms 500]
//             [--follow-max-batches N] [--follow-idle-polls N]
//             [--follow-mode warm|exact]
//
// Constraint file: one denial constraint per line, e.g.
//   t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)
// Matching-dependency file: one per line, e.g.
//   m1: dict=0 Zip=Ext_Zip -> City=Ext_City
// Batch manifest: one dataset per line,
//   dirty.csv,dcs.txt[,repaired.csv[,repairs.csv]]
// ('#' starts a comment). All jobs run concurrently through one Engine
// over a shared worker pool, each with the CLI's configuration.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/engine.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/discovery/fd_discovery.h"
#include "holoclean/io/report_json.h"
#include "holoclean/extdata/md_parser.h"
#include "holoclean/stream/stream_session.h"
#include "holoclean/util/csv.h"
#include "holoclean/util/timer.h"

namespace holoclean {
namespace {

struct CliOptions {
  std::string data_path;
  /// Batch mode: a manifest of datasets run concurrently through one
  /// Engine (--batch). Mutually exclusive with --data.
  std::string batch_path;
  std::string constraints_path;
  std::string dict_path;
  std::string mds_path;
  std::string output_path;
  std::string repairs_path;
  /// Stable machine-readable report (io/report_json schema): the full
  /// report in single-run mode, a per-job status array in batch mode.
  std::string report_json_path;
  std::string ground_truth_path;
  double min_confidence = 0.0;
  bool discover = false;
  double discover_max_error = 0.1;
  /// Deepest stage to run (prefix execution on the staged session);
  /// parsed from the comma-separated --stages list at argument time so a
  /// typo fails before any data loads.
  StageId last_stage = StageId::kRepair;
  /// Stage to invalidate for the incremental re-run demo (--rerun-from),
  /// as an int to allow the "unset" sentinel; -1 = none.
  int rerun_from = -1;
  /// Snapshot to write after the run (--save-session) and to restore the
  /// session from instead of a cold start (--load-session).
  std::string save_session_path;
  std::string load_session_path;
  /// Section codec for --save-session (--snapshot-codec raw|packed).
  SnapshotSaveOptions save_options;
  /// --mmap-restore: map the snapshot and defer the factor-graph section
  /// to first stage access instead of parsing it at restore time.
  SnapshotLoadOptions load_options;
  /// True when --stages, --rerun-from, or the session-snapshot flags drive
  /// the staged session path.
  bool use_session = false;
  /// Streaming ingestion (--follow): after the initial clean, keep polling
  /// --data for appended rows and incrementally re-clean each batch.
  bool follow = false;
  size_t follow_batch_rows = 64;
  int follow_poll_ms = 500;
  /// Stop conditions so scripted runs terminate: after this many batches
  /// (0 = unlimited) or this many consecutive empty polls (0 = forever).
  int follow_max_batches = 0;
  int follow_idle_polls = 0;
  StreamMode follow_mode = StreamMode::kWarm;
  HoloCleanConfig config;
  bool show_help = false;
};

/// The last (deepest) stage named in a comma-separated list.
Result<StageId> ParseStagesFlag(const std::string& list) {
  StageId last = StageId::kDetect;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    HOLO_ASSIGN_OR_RETURN(id, ParseStageName(list.substr(begin, end - begin)));
    if (static_cast<int>(id) > static_cast<int>(last)) last = id;
    if (end == list.size()) break;
    begin = end + 1;
  }
  return last;
}

void PrintUsage() {
  std::printf(
      "usage: holoclean --data FILE --constraints FILE [options]\n"
      "       holoclean --batch MANIFEST [options]\n"
      "  --data FILE           dirty table (CSV with header)\n"
      "  --batch FILE          manifest of jobs, one per line:\n"
      "                        data.csv,dcs.txt[,output.csv[,repairs.csv]];\n"
      "                        all jobs run concurrently through one Engine\n"
      "                        (shared worker pool), each with this CLI\n"
      "                        configuration\n"
      "  --constraints FILE    denial constraints, one per line\n"
      "  --discover            discover approximate FDs as constraints\n"
      "  --discover-max-error E  discovery error budget (default 0.1)\n"
      "  --dict FILE           external dictionary (CSV)\n"
      "  --mds FILE            matching dependencies, one per line\n"
      "  --output FILE         write the repaired table (CSV)\n"
      "  --repairs FILE        write the repair report (CSV)\n"
      "  --report-json FILE    write the stable JSON report (the same\n"
      "                        schema the serve tier returns); in batch\n"
      "                        mode, a per-job status array\n"
      "  --ground-truth FILE   clean table for precision/recall scoring\n"
      "  --tau X               domain-pruning threshold (default 0.5)\n"
      "  --mode M              feats | factors | both (default feats)\n"
      "  --partitioning        ground DC factors within conflict groups\n"
      "  --min-confidence P    only apply repairs with marginal >= P\n"
      "  --seed N              master random seed (default 42)\n"
      "  --threads N           worker threads (0 = all cores)\n"
      "  --stages LIST         run only through the last stage named in the\n"
      "                        comma-separated LIST (detect, compile, learn,\n"
      "                        infer, repair)\n"
      "  --rerun-from STAGE    after the run, invalidate from STAGE and run\n"
      "                        again incrementally (cached stages are skipped)\n"
      "  --save-session FILE   after the run, serialize the session's cached\n"
      "                        stage artifacts into a snapshot file\n"
      "  --load-session FILE   restore the session from a snapshot saved by\n"
      "                        --save-session (same data, constraints, and\n"
      "                        config) instead of starting cold; restored\n"
      "                        stages are reused like an in-process rerun\n"
      "  --snapshot-codec C    section codec for --save-session: packed\n"
      "                        (varint/delta/RLE streams, the default) or\n"
      "                        raw (fixed-width)\n"
      "  --mmap-restore        mmap the --load-session snapshot and defer\n"
      "                        the factor-graph section to first stage\n"
      "                        access instead of parsing it up front\n"
      "  --compiled-kernel V   on (default) runs learn/infer on the compiled\n"
      "                        kernel (dense weights, CSR arenas, DC\n"
      "                        violation tables); off uses the reference\n"
      "                        interpreter — results are bit-identical\n"
      "  --dc-table-cap N      max precomputed violation-table entries per\n"
      "                        DC factor; larger factors fall back to the\n"
      "                        evaluator (default 4096)\n"
      "  --follow              after the initial clean, keep polling --data\n"
      "                        for appended rows and incrementally re-clean\n"
      "                        each batch (streaming ingestion)\n"
      "  --follow-batch-rows N max rows ingested per batch (default 64)\n"
      "  --follow-poll-ms N    poll interval in milliseconds (default 500)\n"
      "  --follow-max-batches N  stop after N batches (0 = unlimited)\n"
      "  --follow-idle-polls N stop after N consecutive empty polls\n"
      "                        (0 = poll forever)\n"
      "  --follow-mode M       warm (default) maintains the model\n"
      "                        incrementally; exact re-compiles per batch\n"
      "                        for bit-identical-to-scratch repairs\n");
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int i) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(std::string(argv[i]) +
                                     " requires a value");
    }
    return std::string(argv[i + 1]);
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
      return options;
    }
    if (arg == "--partitioning") {
      options.config.partitioning = true;
      continue;
    }
    if (arg == "--discover") {
      options.discover = true;
      continue;
    }
    if (arg == "--mmap-restore") {
      options.load_options.lazy_graph = true;
      continue;
    }
    if (arg == "--follow") {
      options.follow = true;
      continue;
    }
    HOLO_ASSIGN_OR_RETURN(value, need_value(i));
    ++i;
    if (arg == "--data") {
      options.data_path = value;
    } else if (arg == "--batch") {
      options.batch_path = value;
    } else if (arg == "--constraints") {
      options.constraints_path = value;
    } else if (arg == "--dict") {
      options.dict_path = value;
    } else if (arg == "--mds") {
      options.mds_path = value;
    } else if (arg == "--output") {
      options.output_path = value;
    } else if (arg == "--repairs") {
      options.repairs_path = value;
    } else if (arg == "--report-json") {
      options.report_json_path = value;
    } else if (arg == "--ground-truth") {
      options.ground_truth_path = value;
    } else if (arg == "--discover-max-error") {
      options.discover_max_error = std::stod(value);
      options.discover = true;
    } else if (arg == "--tau") {
      options.config.tau = std::stod(value);
    } else if (arg == "--min-confidence") {
      options.min_confidence = std::stod(value);
    } else if (arg == "--seed") {
      options.config.seed = std::stoull(value);
    } else if (arg == "--threads") {
      options.config.num_threads = std::stoul(value);
    } else if (arg == "--stages") {
      HOLO_ASSIGN_OR_RETURN(last, ParseStagesFlag(value));
      options.last_stage = last;
      options.use_session = true;
    } else if (arg == "--rerun-from") {
      HOLO_ASSIGN_OR_RETURN(from, ParseStageName(value));
      options.rerun_from = static_cast<int>(from);
      options.use_session = true;
    } else if (arg == "--save-session") {
      options.save_session_path = value;
      options.use_session = true;
    } else if (arg == "--load-session") {
      options.load_session_path = value;
      options.use_session = true;
    } else if (arg == "--snapshot-codec") {
      if (value == "raw") {
        options.save_options.codec = SectionCodec::kRaw;
      } else if (value == "packed") {
        options.save_options.codec = SectionCodec::kPacked;
      } else {
        return Status::InvalidArgument("unknown --snapshot-codec: " + value);
      }
    } else if (arg == "--compiled-kernel") {
      if (value == "on") {
        options.config.compiled_kernel = true;
      } else if (value == "off") {
        options.config.compiled_kernel = false;
      } else {
        return Status::InvalidArgument("unknown --compiled-kernel: " + value +
                                       " (expected on|off)");
      }
    } else if (arg == "--dc-table-cap") {
      options.config.dc_table_cap = std::stoul(value);
    } else if (arg == "--follow-batch-rows") {
      options.follow_batch_rows = std::stoul(value);
      if (options.follow_batch_rows == 0) {
        return Status::InvalidArgument("--follow-batch-rows must be >= 1");
      }
    } else if (arg == "--follow-poll-ms") {
      options.follow_poll_ms = std::atoi(value.c_str());
    } else if (arg == "--follow-max-batches") {
      options.follow_max_batches = std::atoi(value.c_str());
    } else if (arg == "--follow-idle-polls") {
      options.follow_idle_polls = std::atoi(value.c_str());
    } else if (arg == "--follow-mode") {
      if (value == "warm") {
        options.follow_mode = StreamMode::kWarm;
      } else if (value == "exact") {
        options.follow_mode = StreamMode::kExact;
      } else {
        return Status::InvalidArgument("unknown --follow-mode: " + value +
                                       " (expected warm|exact)");
      }
    } else if (arg == "--mode") {
      if (value == "feats") {
        options.config.dc_mode = DcMode::kFeatures;
      } else if (value == "factors") {
        options.config.dc_mode = DcMode::kFactors;
      } else if (value == "both") {
        options.config.dc_mode = DcMode::kBoth;
      } else {
        return Status::InvalidArgument("unknown --mode: " + value);
      }
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.follow) {
    // --follow drives its own session loop; the staged-session demo flags
    // and batch mode would fight it over who owns the pipeline.
    if (!options.batch_path.empty() || options.use_session) {
      return Status::InvalidArgument(
          "--follow is incompatible with --batch, --stages, --rerun-from, "
          "and the session-snapshot flags");
    }
  }
  if (!options.batch_path.empty()) {
    if (!options.data_path.empty()) {
      return Status::InvalidArgument("--batch and --data are exclusive");
    }
    // Batch jobs are shaped entirely by the manifest plus the shared
    // pipeline configuration; flags that name extra per-run inputs or
    // outputs have no per-job meaning, so reject them loudly instead of
    // silently running every job without their effect.
    if (!options.constraints_path.empty() || options.discover ||
        !options.dict_path.empty() || !options.mds_path.empty() ||
        !options.output_path.empty() || !options.repairs_path.empty() ||
        !options.ground_truth_path.empty() ||
        !options.save_session_path.empty() ||
        !options.load_session_path.empty() || options.use_session ||
        options.min_confidence != 0.0) {
      return Status::InvalidArgument(
          "--batch supports only the pipeline-config flags; name "
          "constraints and output files in the manifest "
          "(data.csv,dcs.txt[,output.csv[,repairs.csv]])");
    }
    return options;
  }
  if (options.data_path.empty() ||
      (options.constraints_path.empty() && !options.discover)) {
    return Status::InvalidArgument(
        "--data and (--constraints or --discover) are required "
        "(see --help)");
  }
  return options;
}

void PrintStageTimings(const RunStats& stats) {
  for (const StageTiming& t : stats.stage_timings) {
    if (t.cached) {
      std::printf("  %-8s %8.3fs  (cached)\n", t.name.c_str(), t.seconds);
    } else if (t.peak_rss_bytes > 0) {
      std::printf("  %-8s %8.3fs  peak rss %7.1f MiB\n", t.name.c_str(),
                  t.seconds,
                  static_cast<double>(t.peak_rss_bytes) / (1024.0 * 1024.0));
    } else {
      std::printf("  %-8s %8.3fs\n", t.name.c_str(), t.seconds);
    }
  }
}

Result<std::string> ReadFileText(const std::string& path) {
  // CSV reader already handles files; reuse it for raw text via a small
  // detour is wrong — read directly.
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string out;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

Status WriteFileText(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::InvalidArgument("cannot write " + path);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

/// One parsed manifest line of --batch.
struct BatchEntry {
  std::string data_path;
  std::string constraints_path;
  std::string output_path;
  std::string repairs_path;
};

Result<std::vector<BatchEntry>> ParseManifest(const std::string& text) {
  std::vector<BatchEntry> entries;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) {
      if (end == text.size()) break;
      continue;
    }
    BatchEntry entry;
    std::string* fields[] = {&entry.data_path, &entry.constraints_path,
                             &entry.output_path, &entry.repairs_path};
    size_t field = 0;
    size_t from = 0;
    while (field < 4) {
      size_t comma = line.find(',', from);
      if (comma == std::string::npos) comma = line.size();
      *fields[field++] = line.substr(from, comma - from);
      if (comma == line.size()) break;
      from = comma + 1;
    }
    if (entry.data_path.empty() || entry.constraints_path.empty()) {
      return Status::InvalidArgument(
          "manifest line needs data.csv,constraints.txt: " + line);
    }
    entries.push_back(std::move(entry));
    if (end == text.size()) break;
  }
  if (entries.empty()) {
    return Status::InvalidArgument("batch manifest names no datasets");
  }
  return entries;
}

/// Batch mode: every manifest dataset becomes one Engine job with an owned
/// input bundle; all jobs run concurrently over the engine's shared pool
/// and report per-job status — one malformed dataset fails its own job
/// without poisoning the siblings.
Status RunBatchCli(const CliOptions& options) {
  HOLO_ASSIGN_OR_RETURN(manifest_text, ReadFileText(options.batch_path));
  HOLO_ASSIGN_OR_RETURN(entries, ParseManifest(manifest_text));

  EngineOptions engine_options;
  engine_options.num_threads = options.config.num_threads;
  Engine engine(engine_options);

  struct Job {
    BatchEntry entry;
    std::shared_ptr<Dataset> dataset;
    Status load_status;
    std::future<Result<Report>> future;
  };
  std::vector<Job> jobs;
  jobs.reserve(entries.size());
  Timer timer;
  std::vector<Engine::BatchJob> batch;
  for (BatchEntry& entry : entries) {
    Job job;
    job.entry = std::move(entry);
    jobs.push_back(std::move(job));
  }
  // Load inputs up front (load failures are per-job, reported with the
  // results) and submit every loadable job in one batch.
  std::vector<size_t> submitted;
  for (size_t i = 0; i < jobs.size(); ++i) {
    Job& job = jobs[i];
    auto loaded = [&]() -> Status {
      HOLO_ASSIGN_OR_RETURN(doc, ReadCsvFile(job.entry.data_path));
      HOLO_ASSIGN_OR_RETURN(table, Table::FromCsv(doc));
      job.dataset = std::make_shared<Dataset>(std::move(table));
      HOLO_ASSIGN_OR_RETURN(dc_text,
                            ReadFileText(job.entry.constraints_path));
      HOLO_ASSIGN_OR_RETURN(
          dcs, ParseDenialConstraints(dc_text,
                                      job.dataset->dirty().schema()));
      Engine::BatchJob out;
      out.inputs = CleaningInputs::Owned(
          job.dataset,
          std::make_shared<const std::vector<DenialConstraint>>(
              std::move(dcs)));
      out.options.config = options.config;
      batch.push_back(std::move(out));
      submitted.push_back(i);
      return Status::OK();
    }();
    job.load_status = loaded;
  }
  std::vector<std::future<Result<Report>>> futures =
      engine.SubmitBatch(std::move(batch));
  for (size_t k = 0; k < submitted.size(); ++k) {
    jobs[submitted[k]].future = std::move(futures[k]);
  }

  size_t succeeded = 0;
  // Per-job status in the stable report_json schema (--report-json): the
  // same bytes a serve-tier clean response would carry for the job.
  JsonValue job_statuses = JsonValue::Array();
  auto append_failure = [&job_statuses](const std::string& data_path,
                                        const Status& status) {
    JsonValue entry = JsonValue::Object();
    entry.Set("data", JsonValue::String(data_path));
    entry.Set("ok", JsonValue::Bool(false));
    entry.Set("error", JsonValue::String(status.ToString()));
    job_statuses.Append(std::move(entry));
  };
  for (Job& job : jobs) {
    if (!job.load_status.ok()) {
      std::printf("%-32s FAILED (load): %s\n", job.entry.data_path.c_str(),
                  job.load_status.ToString().c_str());
      append_failure(job.entry.data_path, job.load_status);
      continue;
    }
    Result<Report> result = job.future.get();
    if (!result.ok()) {
      std::printf("%-32s FAILED: %s\n", job.entry.data_path.c_str(),
                  result.status().ToString().c_str());
      append_failure(job.entry.data_path, result.status());
      continue;
    }
    const Report& report = result.value();
    const Table& dirty = job.dataset->dirty();
    // Output-file trouble is this job's failure, not the batch's: the
    // remaining jobs still report (and write) their own results.
    Status write_status = [&]() -> Status {
      if (!job.entry.repairs_path.empty()) {
        CsvDocument out;
        out.header = {"tuple", "attribute", "old_value", "new_value",
                      "probability"};
        for (const Repair& r : report.repairs) {
          out.rows.push_back({std::to_string(r.cell.tid),
                              dirty.schema().name(r.cell.attr),
                              dirty.dict().GetString(r.old_value),
                              dirty.dict().GetString(r.new_value),
                              std::to_string(r.probability)});
        }
        HOLO_RETURN_NOT_OK(WriteCsvFile(job.entry.repairs_path, out));
      }
      if (!job.entry.output_path.empty()) {
        Table repaired = dirty.Clone();
        report.Apply(&repaired);
        HOLO_RETURN_NOT_OK(
            WriteCsvFile(job.entry.output_path, repaired.ToCsv()));
      }
      return Status::OK();
    }();
    if (!write_status.ok()) {
      std::printf("%-32s FAILED (write): %s\n", job.entry.data_path.c_str(),
                  write_status.ToString().c_str());
      append_failure(job.entry.data_path, write_status);
      continue;
    }
    ++succeeded;
    JsonValue entry = JsonValue::Object();
    entry.Set("data", JsonValue::String(job.entry.data_path));
    entry.Set("ok", JsonValue::Bool(true));
    entry.Set("report", ReportToJson(report, dirty));
    job_statuses.Append(std::move(entry));
    std::printf("%-32s %6zu rows  %5zu noisy  %5zu repairs  %6.2fs\n",
                job.entry.data_path.c_str(), job.dataset->dirty().num_rows(),
                report.stats.num_noisy_cells, report.repairs.size(),
                report.stats.TotalSeconds());
  }
  if (!options.report_json_path.empty()) {
    HOLO_RETURN_NOT_OK(WriteFileText(options.report_json_path,
                                     job_statuses.Dump() + "\n"));
    std::printf("wrote JSON job statuses to %s\n",
                options.report_json_path.c_str());
  }
  double seconds = timer.Seconds();
  std::printf("batch: %zu/%zu jobs succeeded in %.2fs (%.2f datasets/sec)\n",
              succeeded, jobs.size(), seconds,
              seconds > 0 ? static_cast<double>(succeeded) / seconds : 0.0);
  if (succeeded != jobs.size()) {
    return Status::InvalidArgument("batch had failing jobs");
  }
  return Status::OK();
}

/// Shared tail of the single-run and --follow paths: confidence filter,
/// summary lines, optional ground-truth scoring, and the output files.
Status FinishRun(const CliOptions& options, const Dataset& dataset,
                 const Report& report) {
  std::vector<Repair> applied;
  for (const Repair& r : report.repairs) {
    if (r.probability >= options.min_confidence) applied.push_back(r);
  }
  std::printf("%zu noisy cells, %zu repairs proposed, %zu above confidence "
              "%.2f\n",
              report.stats.num_noisy_cells, report.repairs.size(),
              applied.size(), options.min_confidence);
  std::printf("timing: detect %.2fs, compile %.2fs, learn %.2fs, infer "
              "%.2fs\n",
              report.stats.detect_seconds, report.stats.compile_seconds,
              report.stats.learn_seconds, report.stats.infer_seconds);

  if (dataset.has_clean()) {
    EvalResult eval = EvaluateRepairs(dataset, applied);
    std::printf("vs ground truth: precision %.3f, recall %.3f, F1 %.3f\n",
                eval.precision, eval.recall, eval.f1);
  }

  const Table& dirty = dataset.dirty();
  if (!options.repairs_path.empty()) {
    CsvDocument out;
    out.header = {"tuple", "attribute", "old_value", "new_value",
                  "probability"};
    for (const Repair& r : applied) {
      out.rows.push_back({std::to_string(r.cell.tid),
                          dirty.schema().name(r.cell.attr),
                          dirty.dict().GetString(r.old_value),
                          dirty.dict().GetString(r.new_value),
                          std::to_string(r.probability)});
    }
    HOLO_RETURN_NOT_OK(WriteCsvFile(options.repairs_path, out));
    std::printf("wrote repair report to %s\n", options.repairs_path.c_str());
  }
  if (!options.report_json_path.empty()) {
    HOLO_RETURN_NOT_OK(WriteFileText(options.report_json_path,
                                     ReportJsonString(report, dirty) + "\n"));
    std::printf("wrote JSON report to %s\n",
                options.report_json_path.c_str());
  }
  if (!options.output_path.empty()) {
    Table repaired = dirty.Clone();
    for (const Repair& r : applied) repaired.Set(r.cell, r.new_value);
    HOLO_RETURN_NOT_OK(
        WriteCsvFile(options.output_path, repaired.ToCsv()));
    std::printf("wrote repaired table to %s\n", options.output_path.c_str());
  }
  return Status::OK();
}

/// --follow: streaming ingestion. Cleans --data once, then keeps polling
/// it for appended rows; each poll's delta is ingested in batches of at
/// most --follow-batch-rows through StreamSession::AppendRows (delta
/// detection + incremental re-clean). The whole CSV is re-read and
/// re-parsed on every poll — robust to quoted newlines, which byte-offset
/// tailing would split mid-record — and rows beyond the already-ingested
/// count form the delta. Stops after --follow-max-batches batches or
/// --follow-idle-polls consecutive empty polls; the output files are
/// written from the final report.
Status RunFollowCli(const CliOptions& options) {
  HOLO_ASSIGN_OR_RETURN(doc, ReadCsvFile(options.data_path));
  size_t ingested_rows = doc.rows.size();
  HOLO_ASSIGN_OR_RETURN(table, Table::FromCsv(doc));
  Dataset dataset(std::move(table));
  std::printf("loaded %zu rows x %zu attributes from %s\n",
              dataset.dirty().num_rows(),
              dataset.dirty().schema().num_attrs(),
              options.data_path.c_str());

  std::vector<DenialConstraint> dcs;
  if (!options.constraints_path.empty()) {
    HOLO_ASSIGN_OR_RETURN(dc_text, ReadFileText(options.constraints_path));
    HOLO_ASSIGN_OR_RETURN(
        parsed, ParseDenialConstraints(dc_text, dataset.dirty().schema()));
    dcs = std::move(parsed);
    std::printf("parsed %zu denial constraints\n", dcs.size());
  }
  if (options.discover) {
    FdDiscoveryOptions discover_options;
    discover_options.max_error = options.discover_max_error;
    auto fds = DiscoverFds(dataset.dirty(), discover_options);
    auto discovered = ToDenialConstraints(dataset.dirty(), fds);
    std::printf("discovered %zu approximate FDs\n", fds.size());
    dcs.insert(dcs.end(), discovered.begin(), discovered.end());
  }
  if (dcs.empty()) {
    return Status::InvalidArgument("no constraints given or discovered");
  }

  ExtDictCollection dicts;
  std::vector<MatchingDependency> mds;
  if (!options.dict_path.empty()) {
    HOLO_ASSIGN_OR_RETURN(dict_doc, ReadCsvFile(options.dict_path));
    HOLO_ASSIGN_OR_RETURN(dict_table, Table::FromCsv(dict_doc));
    dicts.Add(options.dict_path, std::move(dict_table));
    if (options.mds_path.empty()) {
      return Status::InvalidArgument("--dict requires --mds");
    }
    HOLO_ASSIGN_OR_RETURN(md_text, ReadFileText(options.mds_path));
    HOLO_ASSIGN_OR_RETURN(parsed_mds, ParseMatchingDependencies(md_text));
    mds = std::move(parsed_mds);
  }
  if (!options.ground_truth_path.empty()) {
    HOLO_ASSIGN_OR_RETURN(clean_doc,
                          ReadCsvFile(options.ground_truth_path));
    Table clean(dataset.dirty().schema(), dataset.dirty().dict_ptr());
    for (const auto& row : clean_doc.rows) clean.AppendRow(row);
    dataset.set_clean(std::move(clean));
  }

  const ExtDictCollection* dicts_arg = dicts.empty() ? nullptr : &dicts;
  const std::vector<MatchingDependency>* mds_arg =
      mds.empty() ? nullptr : &mds;
  CleaningInputs inputs =
      CleaningInputs::Borrowed(&dataset, &dcs, dicts_arg, mds_arg);
  SessionOptions session_options;
  session_options.config = options.config;
  Result<Session> opened = OpenStandaloneSession(inputs, session_options);
  if (!opened.ok()) return opened.status();
  Session session = std::move(opened).value();

  HOLO_ASSIGN_OR_RETURN(initial, session.RunThrough(StageId::kRepair));
  Report report = std::move(initial);
  std::printf("initial clean: %zu noisy cells, %zu repairs\n",
              report.stats.num_noisy_cells, report.repairs.size());
  PrintStageTimings(report.stats);

  StreamOptions stream_options;
  stream_options.mode = options.follow_mode;
  StreamSession stream(&session, stream_options);

  int batches = 0;
  int idle_polls = 0;
  bool stop = false;
  while (!stop) {
    if (options.follow_max_batches > 0 &&
        batches >= options.follow_max_batches) {
      break;
    }
    HOLO_ASSIGN_OR_RETURN(snapshot, ReadCsvFile(options.data_path));
    if (snapshot.rows.size() <= ingested_rows) {
      ++idle_polls;
      if (options.follow_idle_polls > 0 &&
          idle_polls >= options.follow_idle_polls) {
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.follow_poll_ms > 0
                                        ? options.follow_poll_ms
                                        : 0));
      continue;
    }
    idle_polls = 0;
    while (ingested_rows < snapshot.rows.size()) {
      if (options.follow_max_batches > 0 &&
          batches >= options.follow_max_batches) {
        stop = true;
        break;
      }
      size_t take = snapshot.rows.size() - ingested_rows;
      if (take > options.follow_batch_rows) take = options.follow_batch_rows;
      std::vector<std::vector<std::string>> chunk(
          snapshot.rows.begin() + static_cast<std::ptrdiff_t>(ingested_rows),
          snapshot.rows.begin() +
              static_cast<std::ptrdiff_t>(ingested_rows + take));
      HOLO_ASSIGN_OR_RETURN(updated, stream.AppendRows(chunk));
      report = std::move(updated);
      ingested_rows += take;
      ++batches;
      const StreamBatchStats& b = stream.stats().last_batch;
      std::printf(
          "batch %d: +%zu rows  %zu new violations  %zu repairs  %.3fs%s%s  "
          "(%.0f tuples/sec)\n",
          batches, b.rows, b.new_violations, report.repairs.size(),
          b.total_seconds, b.resync ? "  [resync]" : "",
          b.full_run ? "  [full run]" : "", stream.stats().tuples_per_sec);
    }
  }
  std::printf(
      "follow done: %zu rows in %zu batches (%zu compactions), %.2fs "
      "streaming\n",
      stream.stats().appended_rows, stream.stats().batches,
      stream.stats().compactions, stream.stats().total_seconds);
  return FinishRun(options, dataset, report);
}

Status RunCli(const CliOptions& options) {
  if (!options.batch_path.empty()) return RunBatchCli(options);
  if (options.follow) return RunFollowCli(options);
  // Load the dirty table.
  HOLO_ASSIGN_OR_RETURN(doc, ReadCsvFile(options.data_path));
  HOLO_ASSIGN_OR_RETURN(table, Table::FromCsv(doc));
  Dataset dataset(std::move(table));
  std::printf("loaded %zu rows x %zu attributes from %s\n",
              dataset.dirty().num_rows(),
              dataset.dirty().schema().num_attrs(),
              options.data_path.c_str());

  // Constraints: from a file, from approximate-FD discovery, or both.
  std::vector<DenialConstraint> dcs;
  if (!options.constraints_path.empty()) {
    HOLO_ASSIGN_OR_RETURN(dc_text, ReadFileText(options.constraints_path));
    HOLO_ASSIGN_OR_RETURN(
        parsed, ParseDenialConstraints(dc_text, dataset.dirty().schema()));
    dcs = std::move(parsed);
    std::printf("parsed %zu denial constraints\n", dcs.size());
  }
  if (options.discover) {
    FdDiscoveryOptions discover_options;
    discover_options.max_error = options.discover_max_error;
    auto fds = DiscoverFds(dataset.dirty(), discover_options);
    std::printf("discovered %zu approximate FDs:\n", fds.size());
    for (const DiscoveredFd& fd : fds) {
      std::printf("  %-40s error %.3f\n",
                  fd.ToString(dataset.dirty().schema()).c_str(), fd.error);
    }
    auto discovered = ToDenialConstraints(dataset.dirty(), fds);
    dcs.insert(dcs.end(), discovered.begin(), discovered.end());
  }
  if (dcs.empty()) {
    return Status::InvalidArgument("no constraints given or discovered");
  }

  // Optional external data.
  ExtDictCollection dicts;
  std::vector<MatchingDependency> mds;
  if (!options.dict_path.empty()) {
    HOLO_ASSIGN_OR_RETURN(dict_doc, ReadCsvFile(options.dict_path));
    HOLO_ASSIGN_OR_RETURN(dict_table, Table::FromCsv(dict_doc));
    dicts.Add(options.dict_path, std::move(dict_table));
    if (options.mds_path.empty()) {
      return Status::InvalidArgument("--dict requires --mds");
    }
    HOLO_ASSIGN_OR_RETURN(md_text, ReadFileText(options.mds_path));
    HOLO_ASSIGN_OR_RETURN(parsed_mds, ParseMatchingDependencies(md_text));
    mds = std::move(parsed_mds);
    std::printf("loaded dictionary (%zu rows), %zu matching dependencies\n",
                dicts.Get(0).records().num_rows(), mds.size());
  }

  // Ground truth (optional).
  if (!options.ground_truth_path.empty()) {
    HOLO_ASSIGN_OR_RETURN(clean_doc,
                          ReadCsvFile(options.ground_truth_path));
    // Share the dirty table's dictionary so value ids are comparable.
    Table clean(dataset.dirty().schema(), dataset.dirty().dict_ptr());
    for (const auto& row : clean_doc.rows) clean.AppendRow(row);
    dataset.set_clean(std::move(clean));
  }

  // Run: the plain path uses the one-shot wrapper; --stages / --rerun-from
  // drive the staged session directly.
  const ExtDictCollection* dicts_arg = dicts.empty() ? nullptr : &dicts;
  const std::vector<MatchingDependency>* mds_arg =
      mds.empty() ? nullptr : &mds;
  CleaningInputs inputs =
      CleaningInputs::Borrowed(&dataset, &dcs, dicts_arg, mds_arg);
  Report report;
  if (!options.use_session) {
    HOLO_ASSIGN_OR_RETURN(full, CleanOnce(inputs, {options.config}));
    report = std::move(full);
  } else {
    StageId last = options.last_stage;
    SessionOptions session_options;
    session_options.config = options.config;
    session_options.snapshot_path = options.load_session_path;
    session_options.load_options = options.load_options;
    Result<Session> opened = OpenStandaloneSession(inputs, session_options);
    if (!opened.ok()) return opened.status();
    Session session = std::move(opened).value();
    if (!options.load_session_path.empty()) {
      int restored = 0;
      for (int i = 0; i < kNumStages; ++i) {
        if (session.StageIsValid(static_cast<StageId>(i))) restored = i + 1;
      }
      std::printf("restored session from %s (%d of %d stages cached%s%s)\n",
                  options.load_session_path.c_str(), restored, kNumStages,
                  restored > 0 ? ", valid through " : "",
                  restored > 0
                      ? StageName(static_cast<StageId>(restored - 1))
                      : "");
    }
    HOLO_ASSIGN_OR_RETURN(staged, session.RunThrough(last));
    report = std::move(staged);
    std::printf("stage timings (through %s):\n", StageName(last));
    PrintStageTimings(report.stats);
    if (options.rerun_from >= 0) {
      StageId from = static_cast<StageId>(options.rerun_from);
      session.Invalidate(from);
      HOLO_ASSIGN_OR_RETURN(rerun, session.RunThrough(last));
      report = std::move(rerun);
      std::printf("incremental re-run from %s:\n", StageName(from));
      PrintStageTimings(report.stats);
    }
    if (!options.save_session_path.empty()) {
      HOLO_RETURN_NOT_OK(
          session.Save(options.save_session_path, options.save_options));
      std::printf("saved session snapshot to %s\n",
                  options.save_session_path.c_str());
    }
  }

  return FinishRun(options, dataset, report);
}

}  // namespace
}  // namespace holoclean

int main(int argc, char** argv) {
  auto options = holoclean::ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 options.status().ToString().c_str());
    holoclean::PrintUsage();
    return 2;
  }
  if (options.value().show_help) {
    holoclean::PrintUsage();
    return 0;
  }
  holoclean::Status status = holoclean::RunCli(options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
