// holoclean_datagen — exports the generated paper benchmarks as CSV files
// for use with the `holoclean` CLI (or any other tool):
//
//   holoclean_datagen --dataset hospital --rows 1000 --out /tmp/hospital
//
// writes <out>_dirty.csv, <out>_clean.csv, <out>_constraints.txt and, when
// the benchmark ships a dictionary, <out>_dict.csv + <out>_mds.txt.

#include <cstdio>
#include <string>

#include "holoclean/data/flights.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/data/physicians.h"
#include "holoclean/util/csv.h"

namespace holoclean {
namespace {

Status WriteText(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::OK();
}

Status Run(const std::string& name, size_t rows, uint64_t seed,
           const std::string& out) {
  GeneratedData data = [&]() -> GeneratedData {
    if (name == "hospital") return MakeHospital({rows, 0.05, seed});
    if (name == "flights") {
      FlightsOptions options;
      options.num_rows = rows;
      options.seed = seed;
      return MakeFlights(options);
    }
    if (name == "food") return MakeFood({rows, 0.06, seed});
    PhysiciansOptions options;
    options.num_rows = rows;
    options.seed = seed;
    return MakePhysicians(options);
  }();

  HOLO_RETURN_NOT_OK(
      WriteCsvFile(out + "_dirty.csv", data.dataset.dirty().ToCsv()));
  HOLO_RETURN_NOT_OK(
      WriteCsvFile(out + "_clean.csv", data.dataset.clean().ToCsv()));

  std::string constraints;
  for (const DenialConstraint& dc : data.dcs) {
    constraints += dc.ToString(data.dataset.dirty().schema()) + "\n";
  }
  HOLO_RETURN_NOT_OK(WriteText(out + "_constraints.txt", constraints));

  if (!data.dicts.empty()) {
    HOLO_RETURN_NOT_OK(
        WriteCsvFile(out + "_dict.csv", data.dicts.Get(0).records().ToCsv()));
    std::string mds;
    for (const MatchingDependency& md : data.mds) {
      mds += md.name + ": dict=0 ";
      for (size_t i = 0; i < md.conditions.size(); ++i) {
        if (i > 0) mds += " & ";
        mds += md.conditions[i].data_attr +
               (md.conditions[i].approximate ? "~" : "=") +
               md.conditions[i].ext_attr;
      }
      mds += " -> " + md.target_data_attr + "=" + md.target_ext_attr + "\n";
    }
    HOLO_RETURN_NOT_OK(WriteText(out + "_mds.txt", mds));
  }
  std::printf("%s: wrote %zu rows (%zu true errors) under %s_*\n",
              name.c_str(), data.dataset.dirty().num_rows(),
              data.dataset.TrueErrors().size(), out.c_str());
  return Status::OK();
}

}  // namespace
}  // namespace holoclean

int main(int argc, char** argv) {
  std::string dataset = "hospital";
  std::string out;
  size_t rows = 1000;
  uint64_t seed = 1;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string arg = argv[i];
    std::string value = argv[i + 1];
    if (arg == "--dataset") {
      dataset = value;
    } else if (arg == "--rows") {
      rows = std::stoul(value);
    } else if (arg == "--seed") {
      seed = std::stoull(value);
    } else if (arg == "--out") {
      out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (out.empty()) out = dataset;
  if (dataset != "hospital" && dataset != "flights" && dataset != "food" &&
      dataset != "physicians") {
    std::fprintf(stderr,
                 "--dataset must be hospital|flights|food|physicians\n");
    return 2;
  }
  holoclean::Status status = holoclean::Run(dataset, rows, seed, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
