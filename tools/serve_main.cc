// holoclean_serve — the multi-tenant cleaning daemon.
//
// Listens on 127.0.0.1 (loopback only: the protocol has no auth), speaks
// the length-prefixed JSON protocol of serve/protocol.h, and shuts down
// gracefully on SIGTERM/SIGINT: in-flight requests finish, warm sessions
// and the dataset catalog are persisted to --state-dir, and a restarted
// daemon picks them back up bit-identically.
//
// Usage:
//   holoclean_serve [--port N] [--state-dir DIR] [--spill-dir DIR]
//                   [--threads N] [--cache-capacity N]
//                   [--tenant-inflight N] [--global-inflight N]
//                   [--queue-depth N] [--default-deadline-ms N]
//                   [--max-deadline-ms N] [--socket-timeout-ms N]
//                   [--failpoints PROFILE]
//
// Prints "listening on port N" once ready (port 0 binds ephemerally and
// reports the real port — how the CI smoke test finds it).
//
// --failpoints takes a util/failpoint.h profile string (equivalently the
// HOLOCLEAN_FAILPOINTS env var) — the CI fault-injection smoke job uses
// it to run the daemon under seeded spill/frame/overload faults.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "holoclean/serve/server.h"
#include "holoclean/util/failpoint.h"

namespace {

// Self-pipe: the signal handler only writes one byte; all shutdown work
// happens on the main thread, outside async-signal context.
int g_shutdown_pipe[2] = {-1, -1};

void HandleShutdownSignal(int) {
  char byte = 1;
  ssize_t ignored = ::write(g_shutdown_pipe[1], &byte, 1);
  (void)ignored;
}

bool ParseSizeFlag(const char* value, size_t* out) {
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = static_cast<size_t>(parsed);
  return true;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: holoclean_serve [--port N] [--state-dir DIR] [--spill-dir DIR]\n"
      "                       [--threads N] [--cache-capacity N]\n"
      "                       [--tenant-inflight N] [--global-inflight N]\n"
      "                       [--queue-depth N] [--default-deadline-ms N]\n"
      "                       [--max-deadline-ms N] [--socket-timeout-ms N]\n"
      "                       [--failpoints PROFILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  holoclean::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    size_t parsed = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--port") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed) ||
          parsed > 65535) {
        std::fprintf(stderr, "--port needs a value in [0, 65535]\n");
        return 2;
      }
      options.port = static_cast<int>(parsed);
    } else if (arg == "--state-dir") {
      if ((value = next()) == nullptr) {
        std::fprintf(stderr, "--state-dir needs a directory\n");
        return 2;
      }
      options.state_directory = value;
    } else if (arg == "--spill-dir") {
      if ((value = next()) == nullptr) {
        std::fprintf(stderr, "--spill-dir needs a directory\n");
        return 2;
      }
      options.spill_directory = value;
    } else if (arg == "--threads") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed)) {
        std::fprintf(stderr, "--threads needs a number\n");
        return 2;
      }
      options.engine_threads = parsed;
    } else if (arg == "--cache-capacity") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed)) {
        std::fprintf(stderr, "--cache-capacity needs a number\n");
        return 2;
      }
      options.session_cache_capacity = parsed;
    } else if (arg == "--tenant-inflight") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed) ||
          parsed == 0) {
        std::fprintf(stderr, "--tenant-inflight needs a positive number\n");
        return 2;
      }
      options.admission.per_tenant_inflight = parsed;
    } else if (arg == "--global-inflight") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed) ||
          parsed == 0) {
        std::fprintf(stderr, "--global-inflight needs a positive number\n");
        return 2;
      }
      options.admission.global_inflight = parsed;
    } else if (arg == "--queue-depth") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed)) {
        std::fprintf(stderr,
                     "--queue-depth needs a number (0 = reject-only)\n");
        return 2;
      }
      options.queue.max_depth = parsed;
    } else if (arg == "--default-deadline-ms") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed) ||
          parsed == 0) {
        std::fprintf(stderr, "--default-deadline-ms needs a positive number\n");
        return 2;
      }
      options.queue.default_deadline_ms = static_cast<int64_t>(parsed);
    } else if (arg == "--max-deadline-ms") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed)) {
        std::fprintf(stderr,
                     "--max-deadline-ms needs a number (0 = uncapped)\n");
        return 2;
      }
      options.queue.max_deadline_ms = static_cast<int64_t>(parsed);
    } else if (arg == "--socket-timeout-ms") {
      if ((value = next()) == nullptr || !ParseSizeFlag(value, &parsed)) {
        std::fprintf(stderr,
                     "--socket-timeout-ms needs a number (0 = blocking)\n");
        return 2;
      }
      options.socket_timeout_ms = static_cast<int>(parsed);
    } else if (arg == "--failpoints") {
      if ((value = next()) == nullptr) {
        std::fprintf(stderr, "--failpoints needs a profile string\n");
        return 2;
      }
      options.failpoint_profile = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (::pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // A dead client must not kill the daemon.

  if (!options.failpoint_profile.empty()) {
    // Surface a typo'd profile as a startup error; the server constructor
    // only warns (it must tolerate a bad HOLOCLEAN_FAILPOINTS env).
    holoclean::Status fp =
        holoclean::Failpoints::Global().Configure(options.failpoint_profile);
    if (!fp.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", fp.ToString().c_str());
      return 2;
    }
  }

  holoclean::serve::CleaningServer server(options);

  holoclean::Status st = server.RestoreState();
  if (!st.ok()) {
    std::fprintf(stderr, "state restore failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %d\n", server.port());
  std::fflush(stdout);

  // Block until a shutdown signal arrives.
  char byte;
  while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  st = server.Drain();
  if (!st.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("drained\n");
  return 0;
}
